package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bestring/internal/fsutil"
	"bestring/internal/imagedb"
	"bestring/internal/wal"
)

// Follower tuning defaults.
const (
	// DefaultBatchMax caps the records coalesced into one
	// ApplyReplicatedBatch (one follower fsync, one published version).
	DefaultBatchMax = 256
	// ackInterval throttles ack POSTs: at most one per interval per
	// steady state, plus one whenever a heartbeat shows the follower
	// fully caught up.
	ackInterval = 250 * time.Millisecond
	// reconnect backoff bounds.
	backoffMin = 200 * time.Millisecond
	backoffMax = 5 * time.Second
)

// primaryMarker is the file recording which primary's history this
// follower embodies (the primary's STOREID). Written before the first
// record is ever applied; checked on every connect. A mismatch means
// the follower's log belongs to a different history — syncing would
// interleave two pasts, so it refuses (ErrDiverged).
const primaryMarker = "PRIMARY"

func loadPrimaryMarker(dir string) (string, bool) {
	data, err := os.ReadFile(filepath.Join(dir, primaryMarker))
	if err != nil {
		return "", false
	}
	id := strings.TrimSpace(string(data))
	return id, id != ""
}

func writePrimaryMarker(dir, id string) error {
	err := fsutil.AtomicWriteFile(filepath.Join(dir, primaryMarker), func(w io.Writer) error {
		_, werr := fmt.Fprintln(w, id)
		return werr
	})
	if err != nil {
		return fmt.Errorf("repl: write primary marker: %w", err)
	}
	return nil
}

// Follower connects a replica store to a primary and keeps it in sync:
// stream, batch, apply, ack, reconnect-with-resume on any transient
// failure. Run blocks until the context ends or the stream fails
// permanently (divergence, pruned backlog, or a record that refuses to
// apply).
type Follower struct {
	store      *imagedb.Store
	primaryURL string // e.g. "http://127.0.0.1:8081"
	client     *http.Client
	batchMax   int

	reconnects atomic.Uint64
	remoteLSN  atomic.Uint64 // primary durable LSN last observed (headers/heartbeats)

	// metrics is nil until EnableMetrics; published atomically so it
	// can be enabled while the sync loop is running.
	metrics      atomic.Pointer[followerMetrics]
	lastBeat     atomic.Int64 // unixnano of the last frame off the stream
	lastCaughtUp atomic.Int64 // unixnano of the last applied >= remote observation

	mu        sync.Mutex
	connected bool
	lastErr   string
}

// FollowerStatus describes the sync loop, for /healthz on a follower.
type FollowerStatus struct {
	PrimaryURL string `json:"primaryURL"`
	Connected  bool   `json:"connected"`
	AppliedLSN uint64 `json:"appliedLSN"`
	// PrimaryDurableLSN is the primary's durable horizon as last observed
	// (connect headers and heartbeats); PrimaryDurableLSN - AppliedLSN is
	// the replication lag in records.
	PrimaryDurableLSN uint64 `json:"primaryDurableLSN"`
	Reconnects        uint64 `json:"reconnects"`
	LastError         string `json:"lastError,omitempty"`
}

// NewFollower builds the sync loop for store (which must be open with
// StoreOptions.Replica) against the primary at primaryURL. batchMax <= 0
// uses DefaultBatchMax.
func NewFollower(store *imagedb.Store, primaryURL string, batchMax int) (*Follower, error) {
	if !store.Replica() {
		return nil, errors.New("repl: follower store must be opened with Replica: true")
	}
	if _, err := url.Parse(primaryURL); err != nil {
		return nil, fmt.Errorf("repl: bad primary url: %w", err)
	}
	if batchMax <= 0 {
		batchMax = DefaultBatchMax
	}
	f := &Follower{
		store:      store,
		primaryURL: strings.TrimRight(primaryURL, "/"),
		client:     &http.Client{}, // no overall timeout: the stream is unbounded
		batchMax:   batchMax,
	}
	f.lastCaughtUp.Store(time.Now().UnixNano())
	return f, nil
}

// Status reports the sync loop's current state.
func (f *Follower) Status() FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FollowerStatus{
		PrimaryURL:        f.primaryURL,
		Connected:         f.connected,
		AppliedLSN:        f.store.AppliedLSN(),
		PrimaryDurableLSN: f.remoteLSN.Load(),
		Reconnects:        f.reconnects.Load(),
		LastError:         f.lastErr,
	}
}

func (f *Follower) setState(connected bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.connected = connected
	if err != nil {
		f.lastErr = err.Error()
	} else {
		f.lastErr = ""
	}
}

// Run drives the sync loop until ctx ends (returns nil) or a permanent
// error: ErrDiverged, ErrSnapshotNeeded, or an apply failure. Transient
// failures — refused connections, dropped streams — reconnect with
// exponential backoff, resuming from the store's own applied LSN, which
// is exactly what survives a follower crash (ApplyReplicatedBatch wrote
// every applied record to the local log before publishing it).
func (f *Follower) Run(ctx context.Context) error {
	// Divergence check that needs no connection: a non-empty store with
	// no primary marker was written by something other than a follower
	// loop, so its history is not resumable against any primary.
	if _, ok := loadPrimaryMarker(f.store.Dir()); !ok && f.store.AppliedLSN() > 0 {
		err := fmt.Errorf("%w: store has %d records but no recorded primary", ErrDiverged, f.store.AppliedLSN())
		f.setState(false, err)
		return err
	}
	backoff := backoffMin
	for {
		err := f.streamOnce(ctx)
		f.setState(false, err)
		switch {
		case ctx.Err() != nil:
			return nil
		case err == nil:
			backoff = backoffMin // clean stream end (primary shutdown): retry promptly
		case errors.Is(err, ErrDiverged), errors.Is(err, ErrSnapshotNeeded):
			return err
		case isPermanentApplyError(err):
			return err
		}
		f.reconnects.Add(1)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// applyError marks a record that failed validate→apply on the replica:
// the stream is poisoned (the primary's history no longer replays onto
// this store) and reconnecting cannot fix it.
type applyError struct{ err error }

func (e *applyError) Error() string { return "repl: apply: " + e.err.Error() }
func (e *applyError) Unwrap() error { return e.err }

func isPermanentApplyError(err error) bool {
	var ae *applyError
	return errors.As(err, &ae)
}

// streamOnce opens one stream and consumes it until it breaks. A nil
// return means the stream ended cleanly from the primary side.
func (f *Follower) streamOnce(ctx context.Context) error {
	after := f.store.AppliedLSN()
	u := fmt.Sprintf("%s%s?after=%d&follower=%s&proto=%s",
		f.primaryURL, StreamPath, after, url.QueryEscape(f.store.StoreID()), ProtoVersion)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return fmt.Errorf("%w: primary refused: %s", ErrDiverged, readErrorBody(resp.Body))
	case http.StatusGone:
		return fmt.Errorf("%w: %s", ErrSnapshotNeeded, readErrorBody(resp.Body))
	default:
		return fmt.Errorf("repl: stream request: %s: %s", resp.Status, readErrorBody(resp.Body))
	}
	if v := resp.Header.Get(HeaderProto); v != ProtoVersion {
		return fmt.Errorf("repl: primary speaks protocol %q, want %q", v, ProtoVersion)
	}
	primaryID := resp.Header.Get(HeaderStoreID)
	if primaryID == "" {
		return errors.New("repl: primary sent no store id")
	}
	if v, err := strconv.ParseUint(resp.Header.Get(HeaderDurableLSN), 10, 64); err == nil {
		f.remoteLSN.Store(v)
	}
	// Identity check before a single record applies: the recorded
	// primary must be THIS primary.
	if recorded, ok := loadPrimaryMarker(f.store.Dir()); ok {
		if recorded != primaryID {
			return fmt.Errorf("%w: store follows primary %s, connected to %s", ErrDiverged, recorded, primaryID)
		}
	} else {
		if f.store.AppliedLSN() > 0 {
			return fmt.Errorf("%w: store has records but no recorded primary", ErrDiverged)
		}
		if err := writePrimaryMarker(f.store.Dir(), primaryID); err != nil {
			return err
		}
	}
	f.setState(true, nil)
	return f.consume(ctx, resp.Body)
}

// consume reads frames off one stream, coalescing bursts into batches:
// records are drained into a channel by a reader goroutine, and the
// apply loop takes everything immediately available (up to batchMax)
// before paying the batch's fsync — mirroring the primary's group
// commit, follower-side.
func (f *Follower) consume(ctx context.Context, body io.Reader) error {
	type readResult struct {
		rec   wal.Record
		frame []byte // exact wire bytes, appended to the local log verbatim
		err   error
	}
	// Buffer two full batches ahead: while the apply loop pays a batch's
	// fsync the reader keeps decoding, so catch-up stays apply-bound
	// rather than alternating decode/apply.
	ch := make(chan readResult, 2*f.batchMax)
	done := make(chan struct{})
	defer close(done) // unblocks the reader if the apply loop exits first
	go func() {
		br := bufio.NewReaderSize(body, 1<<20)
		for {
			rec, frame, err := wal.ReadFrameRaw(br)
			select {
			case ch <- readResult{rec: rec, frame: frame, err: err}:
			case <-done:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	var batch []wal.Record
	var frames [][]byte
	lastAck := time.Time{}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		m := f.metrics.Load()
		var t0 time.Time
		if m != nil {
			t0 = time.Now()
		}
		if err := f.store.ApplyReplicatedFrames(batch, frames); err != nil {
			return &applyError{err: err}
		}
		if m != nil {
			m.applySeconds.Observe(time.Since(t0).Seconds())
			m.appliedBatches.Inc()
			m.appliedRecords.Add(uint64(len(batch)))
		}
		if f.store.AppliedLSN() >= f.remoteLSN.Load() {
			f.lastCaughtUp.Store(time.Now().UnixNano())
		}
		batch = batch[:0]
		frames = frames[:0]
		if time.Since(lastAck) >= ackInterval {
			f.ack(ctx)
			lastAck = time.Now()
		}
		return nil
	}
	for {
		var first readResult
		select {
		case <-ctx.Done():
			return ctx.Err()
		case first = <-ch:
		}
		for {
			if first.err != nil {
				if ferr := flush(); ferr != nil {
					return ferr
				}
				if errors.Is(first.err, io.EOF) {
					return nil // clean shutdown on the primary side
				}
				return first.err
			}
			f.lastBeat.Store(time.Now().UnixNano())
			if first.rec.Op == OpHeartbeat {
				// Idle horizon marker: flush whatever is pending and ack so
				// the primary's lag view (and prune floor) advances even
				// without writes.
				if err := flush(); err != nil {
					return err
				}
				f.remoteLSN.Store(first.rec.LSN)
				if f.store.AppliedLSN() >= first.rec.LSN {
					f.lastCaughtUp.Store(time.Now().UnixNano())
				}
				f.ack(ctx)
				lastAck = time.Now()
			} else {
				if first.rec.LSN > f.remoteLSN.Load() {
					f.remoteLSN.Store(first.rec.LSN)
				}
				batch = append(batch, first.rec)
				frames = append(frames, first.frame)
				if len(batch) >= f.batchMax {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			// Drain whatever already arrived; commit the batch once the
			// channel runs dry.
			select {
			case first = <-ch:
				continue
			default:
			}
			// Dry channel but still behind the primary's durable horizon:
			// the missing records are already in flight, so wait for them
			// to fill the batch instead of paying a publish per scheduling
			// quantum. Never waits at the live edge (applied == remote), so
			// steady-state latency is unaffected.
			if len(batch) > 0 && len(batch) < f.batchMax &&
				f.store.AppliedLSN()+uint64(len(batch)) < f.remoteLSN.Load() {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case first = <-ch:
					continue
				}
			}
			break
		}
		if err := flush(); err != nil {
			return err
		}
	}
}

// ack posts the follower's applied LSN. Best-effort: a lost ack only
// delays pruning and lag reporting, never correctness.
func (f *Follower) ack(ctx context.Context) {
	u := fmt.Sprintf("%s%s?follower=%s&lsn=%d",
		f.primaryURL, AckPath, url.QueryEscape(f.store.StoreID()), f.store.AppliedLSN())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// readErrorBody extracts a short error message from a failed response.
func readErrorBody(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 512))
	return strings.TrimSpace(string(data))
}
