package repl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bestring/internal/imagedb"
	"bestring/internal/wal"
)

// DefaultHeartbeat is the idle-stream keepalive cadence.
const DefaultHeartbeat = time.Second

// followerTTL expires registry entries for followers that neither
// stream nor ack: a follower gone this long stops constraining WAL
// pruning (it will be told to re-seed if it ever returns behind the
// retained log). Connected streams never expire.
const followerTTL = 15 * time.Minute

// Primary is the replication feed of one store: it serves the stream
// and ack endpoints, tracks connected followers, and pins the store's
// WAL retention to the slowest follower's acknowledged position.
type Primary struct {
	store     *imagedb.Store
	heartbeat time.Duration

	// metrics is nil until EnableMetrics; published atomically so it
	// can be enabled while streams are live.
	metrics atomic.Pointer[primaryMetrics]

	mu        sync.Mutex
	followers map[string]*followerState
}

// followerState is the registry entry for one follower id.
type followerState struct {
	ackedLSN    uint64
	streamedLSN uint64
	connections int
	lastSeen    time.Time
}

// FollowerInfo is one follower's registry entry, for /healthz.
type FollowerInfo struct {
	ID          string `json:"id"`
	AckedLSN    uint64 `json:"ackedLSN"`
	StreamedLSN uint64 `json:"streamedLSN"`
	Connected   bool   `json:"connected"`
	LastSeenAgo string `json:"lastSeenAgo"`
}

// NewPrimary wraps store as a replication primary and installs the
// retention floor: checkpoints stop pruning WAL segments a registered
// follower has not acknowledged. heartbeat <= 0 uses DefaultHeartbeat.
func NewPrimary(store *imagedb.Store, heartbeat time.Duration) *Primary {
	if heartbeat <= 0 {
		heartbeat = DefaultHeartbeat
	}
	p := &Primary{
		store:     store,
		heartbeat: heartbeat,
		followers: make(map[string]*followerState),
	}
	store.SetPruneFloor(p.minAckedLSN)
	return p
}

// Register installs the replication endpoints on mux.
func (p *Primary) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET "+StreamPath, p.handleStream)
	mux.HandleFunc("POST "+AckPath, p.handleAck)
}

// touch returns the (created-if-needed) registry entry for id with
// lastSeen refreshed. Callers hold p.mu.
func (p *Primary) touchLocked(id string) *followerState {
	f := p.followers[id]
	if f == nil {
		f = &followerState{}
		p.followers[id] = f
	}
	f.lastSeen = time.Now()
	return f
}

// minAckedLSN is the retention floor: the smallest acknowledged LSN
// across live followers (connected, or seen within followerTTL).
// MaxUint64 — no constraint — when no live follower is registered.
func (p *Primary) minAckedLSN() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	floor := uint64(math.MaxUint64)
	for id, f := range p.followers {
		if f.connections == 0 && time.Since(f.lastSeen) > followerTTL {
			delete(p.followers, id)
			continue
		}
		if f.ackedLSN < floor {
			floor = f.ackedLSN
		}
	}
	return floor
}

// Followers reports the registry for /healthz, sorted by the map's
// iteration order (callers sort if they need determinism).
func (p *Primary) Followers() []FollowerInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FollowerInfo, 0, len(p.followers))
	for id, f := range p.followers {
		out = append(out, FollowerInfo{
			ID:          id,
			AckedLSN:    f.ackedLSN,
			StreamedLSN: f.streamedLSN,
			Connected:   f.connections > 0,
			LastSeenAgo: time.Since(f.lastSeen).Round(time.Millisecond).String(),
		})
	}
	return out
}

// handleAck records a follower's applied LSN: POST /repl/v1/ack
// ?follower=<id>&lsn=<applied>.
func (p *Primary) handleAck(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("follower")
	if id == "" {
		http.Error(w, "missing follower id", http.StatusBadRequest)
		return
	}
	lsn, err := strconv.ParseUint(r.URL.Query().Get("lsn"), 10, 64)
	if err != nil {
		http.Error(w, "bad lsn", http.StatusBadRequest)
		return
	}
	p.mu.Lock()
	f := p.touchLocked(id)
	if lsn > f.ackedLSN {
		f.ackedLSN = lsn
	}
	p.mu.Unlock()
	if m := p.metrics.Load(); m != nil {
		m.acks.Inc()
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStream serves GET /repl/v1/stream?after=<lsn>&follower=<id>:
// an unbounded chunked response of WAL frames from after+1 onward,
// heartbeats interleaved while idle. The stream ends only when the
// client disconnects or the store shuts down.
func (p *Primary) handleStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("follower")
	if id == "" {
		http.Error(w, "missing follower id", http.StatusBadRequest)
		return
	}
	after := uint64(0)
	if s := q.Get("after"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad after lsn", http.StatusBadRequest)
			return
		}
		after = v
	}
	durable := p.store.DurableLSN()
	if after > durable {
		// The follower claims records this primary does not have: it is
		// ahead of us, which one history cannot produce. Feeding it would
		// interleave two unrelated histories.
		http.Error(w, fmt.Sprintf("follower at lsn %d is ahead of primary durable lsn %d", after, durable),
			http.StatusConflict)
		return
	}
	if oldest := p.store.OldestLSN(); after+1 < oldest {
		http.Error(w, fmt.Sprintf("lsn %d pruned (oldest retained %d): re-seed from snapshot", after+1, oldest),
			http.StatusGone)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderProto, ProtoVersion)
	w.Header().Set(HeaderStoreID, p.store.StoreID())
	w.Header().Set(HeaderDurableLSN, strconv.FormatUint(durable, 10))
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	met := p.metrics.Load()
	if met != nil {
		met.streams.Inc()
	}
	p.mu.Lock()
	f := p.touchLocked(id)
	f.connections++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		f.connections--
		f.lastSeen = time.Now()
		p.mu.Unlock()
	}()

	tailer := p.store.TailWAL(after)
	defer tailer.Close()
	ctx := r.Context()
	var buf []byte
	for {
		lsn, frame, err := p.nextOrHeartbeat(ctx, tailer)
		if err != nil {
			return // client gone, store closed, or position pruned mid-stream
		}
		heartbeat := frame == nil
		if heartbeat {
			if met != nil {
				met.heartbeats.Inc()
			}
			// Heartbeats are synthesised, so they are the only records that
			// pay an encode; real records forward the stored bytes verbatim.
			rec := wal.Record{Op: OpHeartbeat, LSN: lsn}
			if buf, err = wal.EncodeFrame(buf[:0], &rec); err != nil {
				return
			}
			frame = buf
		}
		if _, err := w.Write(frame); err != nil {
			return
		}
		if !heartbeat {
			p.mu.Lock()
			f.streamedLSN = lsn
			f.lastSeen = time.Now()
			p.mu.Unlock()
			// Flush only once the follower is fully caught up: during
			// catch-up the records coalesce into large writes for free.
			if tailer.NextLSN() <= p.store.DurableLSN() {
				continue
			}
		}
		flusher.Flush()
	}
}

// nextOrHeartbeat waits up to the heartbeat interval for the next
// record's LSN and raw wire frame, signalling a heartbeat (LSN =
// current durable, nil frame) when the stream is idle. The frame is
// valid until the next call.
func (p *Primary) nextOrHeartbeat(ctx context.Context, tailer *wal.Tailer) (uint64, []byte, error) {
	hctx, cancel := context.WithTimeout(ctx, p.heartbeat)
	defer cancel()
	lsn, frame, err := tailer.NextRaw(hctx)
	if err == nil {
		return lsn, frame, nil
	}
	if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		return p.store.DurableLSN(), nil, nil
	}
	return 0, nil, err
}
