// Package repl implements WAL-shipping replication between bestring
// stores (DESIGN.md section 9): a primary-side HTTP server that streams
// write-ahead-log records — sealed segments for catch-up, then live
// tailing of the open segment — and a follower loop that replays them
// through the store's validate→apply path into its own log and MVCC
// versions.
//
// Protocol (version 1). A follower opens
//
//	GET /repl/v1/stream?after=<lsn>&follower=<id>
//
// and the primary responds with a chunked transfer whose body is a
// sequence of WAL frames in the log's own framing (uint32 length,
// uint32 CRC32C, JSON record) — the bytes a follower appends to its own
// log are identical to the bytes the primary's log holds. Response
// headers carry the primary's identity and horizon:
//
//	X-Bestring-Repl-Proto:  protocol version ("1")
//	X-Bestring-Store-Id:    the primary's STOREID
//	X-Bestring-Durable-Lsn: the durable LSN at response time
//
// Only durable records are shipped (see wal.Log's durable marker): a
// follower must never hold a record its primary could still lose.
// While the stream is idle the primary emits a heartbeat record
// (Op "repl/heartbeat", LSN = current durable LSN, not part of the
// log's sequence) so followers can distinguish "no writes" from a dead
// connection and surface their lag.
//
// Followers acknowledge applied LSNs out of band:
//
//	POST /repl/v1/ack?follower=<id>&lsn=<applied>
//
// Acks gate WAL pruning on the primary — checkpoint pruning never
// removes a segment a registered follower still needs (the retention
// floor) — and feed the lag numbers in /healthz.
//
// Status codes: 410 Gone when `after` precedes the oldest retained LSN
// (the follower must re-seed from a snapshot), 409 Conflict when the
// follower's recorded primary identity does not match this store (a
// diverged or foreign follower must not be fed), 400 for a malformed
// request.
package repl

import "errors"

// Protocol constants shared by the primary and follower sides.
const (
	// ProtoVersion is the replication wire-protocol version.
	ProtoVersion = "1"

	// StreamPath and AckPath are the primary's endpoints.
	StreamPath = "/repl/v1/stream"
	AckPath    = "/repl/v1/ack"

	// HeaderProto, HeaderStoreID and HeaderDurableLSN are the stream
	// response headers.
	HeaderProto      = "X-Bestring-Repl-Proto"
	HeaderStoreID    = "X-Bestring-Store-Id"
	HeaderDurableLSN = "X-Bestring-Durable-Lsn"

	// OpHeartbeat is the keepalive pseudo-record op. Heartbeats carry the
	// primary's durable LSN in their LSN field, consume no sequence
	// number, and are never written to any log.
	OpHeartbeat = "repl/heartbeat"
)

// ErrDiverged reports a follower whose recorded history does not belong
// to the primary it connected to: its PRIMARY marker (or non-empty log
// with no marker) disagrees with the primary's store identity. Syncing
// would silently interleave two unrelated histories, so the follower
// refuses and stays read-only on its last applied state.
var ErrDiverged = errors.New("repl: follower history diverged from primary")

// ErrSnapshotNeeded reports a follower whose resume position precedes
// the primary's oldest retained WAL segment: the log can no longer
// replay it forward and the follower must be re-seeded from a snapshot.
var ErrSnapshotNeeded = errors.New("repl: follower too far behind, re-seed from snapshot")
