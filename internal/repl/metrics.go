package repl

import (
	"time"

	"bestring/internal/obs"
)

// primaryMetrics holds the primary-side stream counters; nil until
// Primary.EnableMetrics. Handlers load the pointer once per event, so
// the disabled path costs one atomic load.
type primaryMetrics struct {
	streams    *obs.Counter
	acks       *obs.Counter
	heartbeats *obs.Counter
}

// EnableMetrics registers the primary's replication instruments on
// reg. The follower lag vec is computed at scrape time from the same
// registry that drives WAL retention, so /metrics and the prune floor
// can never disagree. A nil registry is a no-op.
func (p *Primary) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &primaryMetrics{
		streams: reg.Counter("bestring_repl_streams_total",
			"Follower stream connections accepted."),
		acks: reg.Counter("bestring_repl_acks_total",
			"Follower ack posts recorded."),
		heartbeats: reg.Counter("bestring_repl_heartbeats_sent_total",
			"Heartbeat frames synthesised on idle streams."),
	}
	reg.GaugeFunc("bestring_repl_connected_followers",
		"Followers with at least one live stream right now.",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			n := 0
			for _, f := range p.followers {
				if f.connections > 0 {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeVec("bestring_repl_follower_lag_lsn",
		"Records the follower has not yet acknowledged (primary durable LSN minus acked LSN).",
		"follower", func() []obs.Sample {
			durable := p.store.DurableLSN()
			p.mu.Lock()
			defer p.mu.Unlock()
			out := make([]obs.Sample, 0, len(p.followers))
			for id, f := range p.followers {
				lag := uint64(0)
				if durable > f.ackedLSN {
					lag = durable - f.ackedLSN
				}
				out = append(out, obs.Sample{Label: id, Value: float64(lag)})
			}
			return out
		})
	p.metrics.Store(m)
}

// followerMetrics holds the apply-loop instruments; nil until
// Follower.EnableMetrics.
type followerMetrics struct {
	appliedBatches *obs.Counter
	appliedRecords *obs.Counter
	applySeconds   *obs.Histogram
}

// EnableMetrics registers the follower's replication instruments on
// reg. bestring_repl_follower_lag_lsn is deliberately the same family
// name the primary exports (there as a per-follower vec): both roles
// answer "how far behind is replication" under one series name. A nil
// registry is a no-op.
func (f *Follower) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &followerMetrics{
		appliedBatches: reg.Counter("bestring_repl_applied_batches_total",
			"Replicated batches applied (one follower fsync and one published version each)."),
		appliedRecords: reg.Counter("bestring_repl_applied_records_total",
			"Replicated records applied."),
		applySeconds: reg.Histogram("bestring_repl_apply_seconds",
			"Wall time of one ApplyReplicatedFrames batch: validate, apply, local WAL frame, fsync, publish.",
			obs.DurationBuckets()),
	}
	reg.GaugeFunc("bestring_repl_follower_lag_lsn",
		"Records behind the primary's durable horizon (remote durable LSN minus applied LSN).",
		func() float64 {
			remote := f.remoteLSN.Load()
			applied := f.store.AppliedLSN()
			if remote <= applied {
				return 0
			}
			return float64(remote - applied)
		})
	reg.GaugeFunc("bestring_repl_lag_seconds",
		"Seconds since this follower was last fully caught up (0 while at the live edge).",
		func() float64 {
			if f.remoteLSN.Load() <= f.store.AppliedLSN() {
				return 0
			}
			last := f.lastCaughtUp.Load()
			if last == 0 {
				return 0
			}
			return time.Since(time.Unix(0, last)).Seconds()
		})
	reg.GaugeFunc("bestring_repl_heartbeat_age_seconds",
		"Seconds since the last frame (record or heartbeat) arrived from the primary.",
		func() float64 {
			last := f.lastBeat.Load()
			if last == 0 {
				return 0
			}
			return time.Since(time.Unix(0, last)).Seconds()
		})
	reg.GaugeFunc("bestring_repl_connected",
		"1 while a stream to the primary is open, 0 between reconnects.",
		func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			if f.connected {
				return 1
			}
			return 0
		})
	reg.CounterFunc("bestring_repl_reconnects_total",
		"Stream reconnect attempts after a transient failure.",
		func() float64 { return float64(f.reconnects.Load()) })
	f.metrics.Store(m)
}
