// Package ingest provides streaming scene readers for the bulk importer
// (DESIGN.md section 12). A Reader yields one scene at a time so corpora
// far larger than memory can be imported: the importer pulls scenes,
// groups them into bounded chunks, and never materialises the whole
// source. Readers exist for NDJSON (one JSON scene per line, the same
// shape as the REST insert body), a compact CSV dialect, in-memory
// slices, and arbitrary Go iterators.
package ingest

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"strconv"
	"strings"

	"bestring/internal/core"
)

// Scene is one importable image with its identity.
type Scene struct {
	ID    string     `json:"id"`
	Name  string     `json:"name,omitempty"`
	Image core.Image `json:"image"`
}

// Reader streams scenes. Next returns io.EOF when the source is
// exhausted; any other error aborts the import. Readers are not safe for
// concurrent use — the importer pulls from a single goroutine.
type Reader interface {
	Next() (Scene, error)
}

// maxLineBytes bounds one NDJSON line / CSV record. A single scene is a
// few KB even with hundreds of objects; 16MiB leaves generous headroom
// while keeping a corrupted length from ballooning the scanner buffer.
const maxLineBytes = 16 << 20

// NDJSON reads newline-delimited JSON: one Scene object per line
// ({"id":"...","name":"...","image":{"xmax":..,"ymax":..,"objects":[..]}}),
// blank lines skipped. This is the wire format of POST /api/v1/import.
func NDJSON(r io.Reader) Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	return &ndjsonReader{sc: sc}
}

type ndjsonReader struct {
	sc   *bufio.Scanner
	line int
}

func (r *ndjsonReader) Next() (Scene, error) {
	for r.sc.Scan() {
		r.line++
		raw := strings.TrimSpace(r.sc.Text())
		if raw == "" {
			continue
		}
		var s Scene
		if err := json.Unmarshal([]byte(raw), &s); err != nil {
			return Scene{}, fmt.Errorf("ingest: ndjson line %d: %w", r.line, err)
		}
		return s, nil
	}
	if err := r.sc.Err(); err != nil {
		return Scene{}, fmt.Errorf("ingest: ndjson line %d: %w", r.line+1, err)
	}
	return Scene{}, io.EOF
}

// CSV reads the compact comma-separated dialect
//
//	id,name,xmax,ymax,objects
//
// where objects packs the scene content as |-separated label:x0:y0:x1:y1
// specs, e.g. "cup:1:2:3:4|plate:0:0:9:2". A header row naming the five
// columns is skipped if present. Standard CSV quoting applies, so labels
// containing commas survive round-trips.
func CSV(r io.Reader) Reader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	cr.ReuseRecord = true
	return &csvReader{cr: cr}
}

type csvReader struct {
	cr   *csv.Reader
	line int
}

func (r *csvReader) Next() (Scene, error) {
	for {
		rec, err := r.cr.Read()
		if err == io.EOF {
			return Scene{}, io.EOF
		}
		if err != nil {
			return Scene{}, fmt.Errorf("ingest: csv: %w", err)
		}
		r.line++
		if r.line == 1 && rec[0] == "id" && rec[2] == "xmax" {
			continue // header row
		}
		s, err := sceneFromCSV(rec)
		if err != nil {
			return Scene{}, fmt.Errorf("ingest: csv record %d: %w", r.line, err)
		}
		return s, nil
	}
}

func sceneFromCSV(rec []string) (Scene, error) {
	xmax, err := strconv.Atoi(rec[2])
	if err != nil {
		return Scene{}, fmt.Errorf("xmax: %w", err)
	}
	ymax, err := strconv.Atoi(rec[3])
	if err != nil {
		return Scene{}, fmt.Errorf("ymax: %w", err)
	}
	s := Scene{ID: rec[0], Name: rec[1], Image: core.Image{XMax: xmax, YMax: ymax}}
	if rec[4] == "" {
		return s, nil
	}
	specs := strings.Split(rec[4], "|")
	s.Image.Objects = make([]core.Object, 0, len(specs))
	for _, spec := range specs {
		parts := strings.Split(spec, ":")
		if len(parts) != 5 {
			return Scene{}, fmt.Errorf("object %q: want label:x0:y0:x1:y1", spec)
		}
		var coords [4]int
		for i, p := range parts[1:] {
			coords[i], err = strconv.Atoi(p)
			if err != nil {
				return Scene{}, fmt.Errorf("object %q: %w", spec, err)
			}
		}
		s.Image.Objects = append(s.Image.Objects, core.Object{
			Label: parts[0],
			Box:   core.NewRect(coords[0], coords[1], coords[2], coords[3]),
		})
	}
	return s, nil
}

// CSVObjects renders a scene's objects in the CSV dialect's packed
// column format — the inverse of what CSV parses. Benchmarks and
// exporters share it so the two sides cannot drift.
func CSVObjects(img core.Image) string {
	var b strings.Builder
	for i, o := range img.Objects {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s:%d:%d:%d:%d", o.Label, o.Box.X0, o.Box.Y0, o.Box.X1, o.Box.Y1)
	}
	return b.String()
}

// FromItems wraps an in-memory slice as a Reader.
func FromItems(items []Scene) Reader {
	return &sliceReader{items: items}
}

type sliceReader struct {
	items []Scene
	pos   int
}

func (r *sliceReader) Next() (Scene, error) {
	if r.pos >= len(r.items) {
		return Scene{}, io.EOF
	}
	s := r.items[r.pos]
	r.pos++
	return s, nil
}

// FromSeq adapts a Go iterator to a Reader, so generators can feed the
// importer without materialising anything. The sequence ends the stream;
// a non-nil error from the sequence aborts it.
func FromSeq(seq iter.Seq2[Scene, error]) Reader {
	next, stop := iter.Pull2(seq)
	return &seqReader{next: next, stop: stop}
}

type seqReader struct {
	next func() (Scene, error, bool)
	stop func()
}

func (r *seqReader) Next() (Scene, error) {
	s, err, ok := r.next()
	if !ok {
		r.stop()
		return Scene{}, io.EOF
	}
	if err != nil {
		r.stop()
		return Scene{}, err
	}
	return s, nil
}
