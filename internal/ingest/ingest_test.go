package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"bestring/internal/core"
)

func testScenes(n int) []Scene {
	scenes := make([]Scene, n)
	for i := range scenes {
		scenes[i] = Scene{
			ID:   fmt.Sprintf("s%03d", i),
			Name: fmt.Sprintf("scene %d", i),
			Image: core.NewImage(20, 20,
				core.Object{Label: fmt.Sprintf("icon%02d", i%5), Box: core.NewRect(i%10, 0, i%10+2, 3)},
				core.Object{Label: "anchor", Box: core.NewRect(5, 5, 8, 9)},
			),
		}
	}
	return scenes
}

func drain(t *testing.T, r Reader) []Scene {
	t.Helper()
	var out []Scene
	for {
		s, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	want := testScenes(7)
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for i, s := range want {
		if err := enc.Encode(s); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			b.WriteString("\n   \n") // blank lines are skipped
		}
	}
	got := drain(t, NDJSON(strings.NewReader(b.String())))
	if len(got) != len(want) {
		t.Fatalf("%d scenes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Name != want[i].Name ||
			!reflect.DeepEqual(got[i].Image, want[i].Image) {
			t.Fatalf("scene %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestNDJSONBadLine(t *testing.T) {
	r := NDJSON(strings.NewReader("{\"id\":\"a\",\"image\":{\"xmax\":3,\"ymax\":3}}\n{nope\n"))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want a line-2 parse error", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	want := testScenes(5)
	var b strings.Builder
	b.WriteString("id,name,xmax,ymax,objects\n") // header row is skipped
	for _, s := range want {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%q\n", s.ID, s.Name, s.Image.XMax, s.Image.YMax, CSVObjects(s.Image))
	}
	got := drain(t, CSV(strings.NewReader(b.String())))
	if len(got) != len(want) {
		t.Fatalf("%d scenes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || !reflect.DeepEqual(got[i].Image, want[i].Image) {
			t.Fatalf("scene %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	// Wrong column count.
	if _, err := CSV(strings.NewReader("a,b,c\n")).Next(); err == nil {
		t.Fatal("short record accepted")
	}
	// Malformed object spec.
	_, err := CSV(strings.NewReader("a,,3,3,icon:1:2\n")).Next()
	if err == nil || !strings.Contains(err.Error(), "label:x0:y0:x1:y1") {
		t.Fatalf("err = %v", err)
	}
	// Empty objects column is a bare canvas, not an error.
	s, err := CSV(strings.NewReader("a,,3,3,\n")).Next()
	if err != nil || len(s.Image.Objects) != 0 {
		t.Fatalf("bare canvas: %+v, %v", s, err)
	}
}

func TestFromItemsAndSeq(t *testing.T) {
	want := testScenes(4)
	if got := drain(t, FromItems(want)); len(got) != 4 {
		t.Fatalf("FromItems: %d scenes", len(got))
	}
	boom := errors.New("generator failed")
	r := FromSeq(func(yield func(Scene, error) bool) {
		if !yield(want[0], nil) {
			return
		}
		yield(Scene{}, boom)
	})
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sequence error", err)
	}
}
