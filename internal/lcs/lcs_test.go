package lcs

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bestring/internal/core"
)

func mustAxis(t *testing.T, s string) core.Axis {
	t.Helper()
	a, err := core.ParseAxis(s)
	if err != nil {
		t.Fatalf("ParseAxis(%q): %v", s, err)
	}
	return a
}

func TestLengthIdenticalAxes(t *testing.T) {
	be := core.MustConvert(core.Figure1Image())
	if got := Length(be.X, be.X); got != len(be.X) {
		t.Errorf("LCS of axis with itself = %d, want %d", got, len(be.X))
	}
}

func TestLengthEmpty(t *testing.T) {
	axis := mustAxis(t, "E A+ E A- E")
	if got := Length(nil, axis); got != 0 {
		t.Errorf("LCS(nil, axis) = %d, want 0", got)
	}
	if got := Length(axis, nil); got != 0 {
		t.Errorf("LCS(axis, nil) = %d, want 0", got)
	}
	if got := Length(nil, nil); got != 0 {
		t.Errorf("LCS(nil, nil) = %d, want 0", got)
	}
}

func TestLengthKnownCases(t *testing.T) {
	tests := []struct {
		name string
		q, d string
		want int
	}{
		{
			name: "disjoint symbols share only dummies",
			q:    "E A+ E A- E",
			d:    "E B+ E B- E",
			// Dummies can match but never two in a row: E . E alternation
			// is impossible without a symbol between, so only one E aligns.
			want: 1,
		},
		{
			name: "common subpattern",
			q:    "E A+ E B+ E A- B- E",
			d:    "E A+ E B+ E B- A- E",
			// E A+ E B+ E then one of {A-, B-} and trailing E:
			want: 7,
		},
		{
			name: "query subsumed by database",
			q:    "A+ E A-",
			d:    "E A+ E B+ E A- B- E",
			want: 3,
		},
		{
			name: "kind mismatch blocks match",
			q:    "A+",
			d:    "A-",
			want: 0,
		},
		{
			name: "no consecutive dummy picks",
			q:    "E E E", // not produced by Convert, but legal input to LCS
			d:    "E E E",
			want: 1,
		},
		{
			name: "dummy between symbols counts",
			q:    "A+ E A-",
			d:    "A+ E A-",
			want: 3,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q, d := mustAxis(t, tt.q), mustAxis(t, tt.d)
			if got := Length(q, d); got != tt.want {
				t.Errorf("Length = %d, want %d", got, tt.want)
			}
			if got := NewTable(q, d).Len(); got != tt.want {
				t.Errorf("NewTable().Len() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestTableMatchesRollingLength(t *testing.T) {
	f := func(s1, s2 uint8) bool {
		q := core.MustConvert(randomImage(int(s1))).X
		d := core.MustConvert(randomImage(int(s2))).X
		return NewTable(q, d).Len() == Length(q, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModifiedBoundedByClassic(t *testing.T) {
	// The dummy restriction can only shorten the LCS, and any common
	// subsequence of the dummy-stripped axes is a valid modified common
	// subsequence, so:
	//   Classic(strip(q), strip(d)) <= Modified(q, d) <= Classic(q, d).
	f := func(s1, s2 uint8) bool {
		q := core.MustConvert(randomImage(int(s1))).X
		d := core.MustConvert(randomImage(int(s2))).X
		mod := Length(q, d)
		hi := Classic(q, d)
		lo := Classic(StripDummies(q), StripDummies(d))
		return lo <= mod && mod <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLengthSymmetric(t *testing.T) {
	f := func(s1, s2 uint8) bool {
		q := core.MustConvert(randomImage(int(s1))).Y
		d := core.MustConvert(randomImage(int(s2))).Y
		return Length(q, d) == Length(d, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReconstructProperties(t *testing.T) {
	// The reconstructed string must: have the table's length, be a common
	// subsequence of both inputs, and contain no consecutive dummies.
	f := func(s1, s2 uint8) bool {
		q := core.MustConvert(randomImage(int(s1))).X
		d := core.MustConvert(randomImage(int(s2))).X
		table := NewTable(q, d)
		got := table.Reconstruct()
		if len(got) != table.Len() {
			return false
		}
		if !IsSubsequence(got, q) || !IsSubsequence(got, d) {
			return false
		}
		return ValidateNoConsecutiveDummies(got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReconstructIdentity(t *testing.T) {
	be := core.MustConvert(core.Figure1Image())
	got := NewTable(be.X, be.X).Reconstruct()
	if !got.Equal(be.X) {
		t.Errorf("self-LCS = %q, want %q", got.String(), be.X.String())
	}
}

func TestReconstructFigure1PartialQuery(t *testing.T) {
	// Query with only objects A and C (B dropped): the LCS against the full
	// Figure 1 image must contain every A/C boundary of the query.
	full := core.MustConvert(core.Figure1Image())
	partial, _ := core.Figure1Image().WithoutObject("B")
	q := core.MustConvert(partial)
	table := NewTable(q.X, full.X)
	got := table.Reconstruct()
	counts := map[string]int{}
	for _, tok := range got {
		if !tok.Dummy {
			counts[tok.Label]++
		}
	}
	if counts["A"] != 2 || counts["C"] != 2 {
		t.Errorf("partial-query LCS %q: want both boundaries of A and C", got.String())
	}
}

func TestIsSubsequence(t *testing.T) {
	seq := mustAxis(t, "E A+ E B+ E A- B- E")
	tests := []struct {
		sub  string
		want bool
	}{
		{"E A+ A-", true},
		{"A+ B+ B-", true},
		{"", true},
		{"B+ A+", false},
		{"A- A+", false},
		{"E E E E E", false},
	}
	for _, tt := range tests {
		sub := mustAxis(t, tt.sub)
		if got := IsSubsequence(sub, seq); got != tt.want {
			t.Errorf("IsSubsequence(%q) = %v, want %v", tt.sub, got, tt.want)
		}
	}
}

func TestClassicKnown(t *testing.T) {
	q := mustAxis(t, "E E E")
	d := mustAxis(t, "E E")
	if got := Classic(q, d); got != 2 {
		t.Errorf("Classic EEE/EE = %d, want 2 (no dummy restriction)", got)
	}
}

func TestStripDummies(t *testing.T) {
	a := mustAxis(t, "E A+ E A- E")
	got := StripDummies(a)
	want := mustAxis(t, "A+ A-")
	if !got.Equal(want) {
		t.Errorf("StripDummies = %q, want %q", got.String(), want.String())
	}
	if len(StripDummies(nil)) != 0 {
		t.Error("StripDummies(nil) should be empty")
	}
}

func TestValidateNoConsecutiveDummies(t *testing.T) {
	if err := ValidateNoConsecutiveDummies(mustAxis(t, "E A+ E")); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if err := ValidateNoConsecutiveDummies(mustAxis(t, "A+ E E A-")); err == nil {
		t.Error("expected error for consecutive dummies")
	}
}

// TestNoConsecutiveDummiesEverProduced exercises Algorithm 2's central
// guarantee over many random pairs, including adversarial dummy-heavy axes.
func TestNoConsecutiveDummiesEverProduced(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		q := randomDummyHeavyAxis(rng)
		d := randomDummyHeavyAxis(rng)
		table := NewTable(q, d)
		got := table.Reconstruct()
		if err := ValidateNoConsecutiveDummies(got); err != nil {
			t.Fatalf("trial %d: q=%q d=%q lcs=%q: %v",
				trial, q.String(), d.String(), got.String(), err)
		}
		if len(got) != table.Len() {
			t.Fatalf("trial %d: reconstruct length %d != table length %d",
				trial, len(got), table.Len())
		}
		if !IsSubsequence(got, q) || !IsSubsequence(got, d) {
			t.Fatalf("trial %d: %q is not a common subsequence", trial, got.String())
		}
	}
}

// randomDummyHeavyAxis builds arbitrary token soup (legal LCS input even if
// not a well-formed BE-string) to stress the dummy rule.
func randomDummyHeavyAxis(rng *rand.Rand) core.Axis {
	n := rng.Intn(14)
	axis := make(core.Axis, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			axis = append(axis, core.DummyToken())
		case 1:
			axis = append(axis, core.BeginToken(fmt.Sprintf("O%d", rng.Intn(3))))
		default:
			axis = append(axis, core.EndToken(fmt.Sprintf("O%d", rng.Intn(3))))
		}
	}
	return axis
}

func randomImage(seed int) core.Image {
	rng := rand.New(rand.NewSource(int64(seed)))
	const xmax, ymax = 32, 24
	n := 1 + rng.Intn(8)
	objs := make([]core.Object, 0, n)
	for i := 0; i < n; i++ {
		x0 := rng.Intn(xmax)
		y0 := rng.Intn(ymax)
		objs = append(objs, core.Object{
			Label: fmt.Sprintf("O%d", i),
			Box:   core.NewRect(x0, y0, x0+rng.Intn(xmax-x0+1), y0+rng.Intn(ymax-y0+1)),
		})
	}
	return core.NewImage(xmax, ymax, objs...)
}
