package lcs

import (
	"strings"
	"testing"

	"bestring/internal/core"
)

// axisFromWords builds arbitrary token sequences from fuzzer words:
// "e"/"" become dummies, "x+"/"x-" boundary symbols, anything else a
// begin boundary.
func axisFromWords(s string) core.Axis {
	var axis core.Axis
	for _, w := range strings.Fields(s) {
		switch {
		case w == "e" || w == "E":
			axis = append(axis, core.DummyToken())
		case strings.HasSuffix(w, "-") && len(w) > 1:
			axis = append(axis, core.EndToken(strings.TrimSuffix(w, "-")))
		case strings.HasSuffix(w, "+") && len(w) > 1:
			axis = append(axis, core.BeginToken(strings.TrimSuffix(w, "+")))
		default:
			axis = append(axis, core.BeginToken(w))
		}
	}
	return axis
}

// FuzzLCSInvariants drives Algorithm 2 + 3 with arbitrary token soup and
// asserts the paper's invariants: symmetric length, bounded by the
// classic LCS, reconstruction matches the length, is a common
// subsequence, and never contains consecutive dummies.
func FuzzLCSInvariants(f *testing.F) {
	f.Add("e a+ e a- e", "e a+ e b+ a- e")
	f.Add("e e e", "e e")
	f.Add("a+ b+ c+", "c+ b+ a+")
	f.Add("", "e a+")
	f.Fuzz(func(t *testing.T, s1, s2 string) {
		q := axisFromWords(s1)
		d := axisFromWords(s2)
		if len(q) > 64 || len(d) > 64 {
			return // keep the quadratic table small
		}
		length := Length(q, d)
		if got := Length(d, q); got != length {
			t.Fatalf("length not symmetric: %d vs %d", length, got)
		}
		table := NewTable(q, d)
		if table.Len() != length {
			t.Fatalf("table length %d != rolling length %d", table.Len(), length)
		}
		if hi := Classic(q, d); length > hi {
			t.Fatalf("modified LCS %d exceeds classic %d", length, hi)
		}
		got := table.Reconstruct()
		if len(got) != length {
			t.Fatalf("reconstruction length %d != %d", len(got), length)
		}
		if !IsSubsequence(got, q) || !IsSubsequence(got, d) {
			t.Fatalf("reconstruction %q is not a common subsequence", got.String())
		}
		if err := ValidateNoConsecutiveDummies(got); err != nil {
			t.Fatalf("reconstruction violates dummy rule: %v", err)
		}
	})
}
