// Package lcs implements the similarity-retrieval algorithms of the 2D
// BE-string paper (Wang, ICDCS 2001, section 4): the modified Longest
// Common Subsequence over BE-string axes (Algorithm 2, 2D-Be-LCS-Length)
// and the LCS reconstruction procedure (Algorithm 3, Print-2D-Be-LCS),
// together with the classic LCS used as a cross-check.
//
// The modification over the textbook LCS is twofold. First, the LCS is
// never allowed to pick two dummy objects in a row: a single dummy already
// asserts "these two boundaries project to distinct coordinates", so a
// second consecutive dummy would add length without adding spatial
// information. The dynamic-programming table stores signed lengths: a
// negative cell value means the optimal common subsequence ending at that
// cell ends with a dummy object. Second, the paper drops the usual
// direction matrix; ties prefer the up, then left neighbour, and the path
// is re-inferred from the length table alone when reconstructing.
package lcs

import (
	"fmt"

	"bestring/internal/core"
)

// Table is the LCS length-inference table W of Algorithm 2. Cell (i, j)
// holds the signed length of the modified LCS of q[0:i] and d[0:j]; the
// magnitude is the length, and a negative sign records that this optimum
// ends with a dummy object. Row 0 and column 0 are zero.
type Table struct {
	q, d core.Axis
	w    []int // (len(q)+1) x (len(d)+1), row-major
	cols int
}

// at returns the signed cell value W[i][j].
func (t *Table) at(i, j int) int { return t.w[i*t.cols+j] }

func (t *Table) set(i, j, v int) { t.w[i*t.cols+j] = v }

// Len returns the modified LCS length (the magnitude of the last cell).
func (t *Table) Len() int { return abs(t.at(len(t.q), len(t.d))) }

// Query returns the query axis the table was built from.
func (t *Table) Query() core.Axis { return t.q }

// Database returns the database axis the table was built from.
func (t *Table) Database() core.Axis { return t.d }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// NewTable runs Algorithm 2 (2D-Be-LCS-Length) on two BE-string axes,
// producing the full inference table. Time and space are O(mn) where m, n
// are the axis lengths (at most 4·objects+1 each, so O of the object
// counts' product — the paper's headline matching complexity).
func NewTable(q, d core.Axis) *Table {
	m, n := len(q), len(d)
	t := &Table{q: q, d: d, w: make([]int, (m+1)*(n+1)), cols: n + 1}
	for i := 1; i <= m; i++ {
		qi := q[i-1]
		for j := 1; j <= n; j++ {
			// Prefer the up, then left neighbour with maximum magnitude
			// (Algorithm 2 lines 16-19); the sign travels with the value.
			up, left := t.at(i-1, j), t.at(i, j-1)
			best := left
			if abs(up) >= abs(left) {
				best = up
			}
			// Diagonal extension (lines 21-26): symbols must match, and a
			// dummy may only extend a path that does not already end with a
			// dummy (w[i-1][j-1] >= 0).
			if qi.Equal(d[j-1]) && (!qi.Dummy || t.at(i-1, j-1) >= 0) {
				if ext := abs(t.at(i-1, j-1)) + 1; ext > abs(best) {
					best = ext
					if qi.Dummy {
						best = -best
					}
				}
			}
			t.set(i, j, best)
		}
	}
	return t
}

// Length returns the modified LCS length of two axes using O(min(m,n))
// additional space (two rolling rows). It computes the same value as
// NewTable(q, d).Len() without materialising the table; use it for
// search-time scoring where the matched string itself is not needed.
func Length(q, d core.Axis) int {
	if len(d) < len(q) {
		q, d = d, q // LCS is symmetric; roll the shorter axis
	}
	n := len(d)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for i := 1; i <= len(q); i++ {
		qi := q[i-1]
		cur[0] = 0
		for j := 1; j <= n; j++ {
			up, left := prev[j], cur[j-1]
			best := left
			if abs(up) >= abs(left) {
				best = up
			}
			if qi.Equal(d[j-1]) && (!qi.Dummy || prev[j-1] >= 0) {
				if ext := abs(prev[j-1]) + 1; ext > abs(best) {
					best = ext
					if qi.Dummy {
						best = -best
					}
				}
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return abs(prev[n])
}

// Reconstruct replays Algorithm 3 (Print-2D-Be-LCS) on the table,
// returning one modified LCS as a token sequence in forward order. The
// paper states it recursively; this is the equivalent iteration (the moves
// are identical: prefer up, then left, else take the diagonal and emit).
func (t *Table) Reconstruct() core.Axis {
	var rev core.Axis
	i, j := len(t.q), len(t.d)
	for i > 0 && j > 0 {
		switch {
		case abs(t.at(i, j)) == abs(t.at(i-1, j)):
			i--
		case abs(t.at(i, j)) == abs(t.at(i, j-1)):
			j--
		default:
			rev = append(rev, t.q[i-1])
			i--
			j--
		}
	}
	// Reverse into forward order.
	out := make(core.Axis, len(rev))
	for k, tok := range rev {
		out[len(rev)-1-k] = tok
	}
	return out
}

// IsSubsequence reports whether sub is a subsequence of seq under token
// equality — the correctness predicate for Reconstruct.
func IsSubsequence(sub, seq core.Axis) bool {
	i := 0
	for _, tok := range seq {
		if i < len(sub) && sub[i].Equal(tok) {
			i++
		}
	}
	return i == len(sub)
}

// Classic computes the textbook (CLRS) LCS length of two axes, with no
// dummy restriction. It upper-bounds the modified LCS and is used for
// cross-validation and for the E7 cost comparison.
func Classic(q, d core.Axis) int {
	m, n := len(q), len(d)
	if m == 0 || n == 0 {
		return 0
	}
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			switch {
			case q[i-1].Equal(d[j-1]):
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// StripDummies returns the axis with all dummy objects removed.
func StripDummies(a core.Axis) core.Axis {
	out := make(core.Axis, 0, len(a))
	for _, t := range a {
		if !t.Dummy {
			out = append(out, t)
		}
	}
	return out
}

// ValidateNoConsecutiveDummies returns an error if the token sequence
// contains two adjacent dummy objects — the invariant Algorithm 2 enforces
// on every LCS it produces.
func ValidateNoConsecutiveDummies(a core.Axis) error {
	for i := 1; i < len(a); i++ {
		if a[i].Dummy && a[i-1].Dummy {
			return fmt.Errorf("consecutive dummy objects at positions %d-%d", i-1, i)
		}
	}
	return nil
}
