package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, exactly
// one `# HELP`/`# TYPE` pair per family, series sorted by label set.
// Nil-safe: a nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	r.mu.Lock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition. Nil-safe: a
// nil registry serves an empty (still valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

func (f *family) write(w *bufio.Writer) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]*seriesEntry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, f.series[k])
	}
	vecFn, vecLabel := f.vecFn, f.vecLabel
	f.mu.Unlock()

	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteByte('\n')
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')

	if vecFn != nil {
		samples := vecFn()
		sort.Slice(samples, func(i, j int) bool { return samples[i].Label < samples[j].Label })
		for _, s := range samples {
			w.WriteString(f.name)
			w.WriteString(renderLabels([]string{vecLabel, s.Label}))
			w.WriteByte(' ')
			w.WriteString(formatFloat(s.Value))
			w.WriteByte('\n')
		}
		return
	}

	for _, s := range entries {
		switch {
		case s.c != nil:
			writeSample(w, f.name, s.labels, strconv.FormatUint(s.c.Value(), 10))
		case s.cfn != nil:
			writeSample(w, f.name, s.labels, formatFloat(s.cfn()))
		case s.g != nil:
			writeSample(w, f.name, s.labels, formatFloat(s.g.Value()))
		case s.gfn != nil:
			writeSample(w, f.name, s.labels, formatFloat(s.gfn()))
		case s.h != nil:
			writeHistogram(w, f.name, s.labels, s.h)
		}
	}
}

func writeSample(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// writeHistogram emits the _bucket/_sum/_count triplet. The +Inf
// bucket equals _count exactly (both come from the same per-stripe
// totals), so the exposition is always internally consistent.
func writeHistogram(w *bufio.Writer, name, labels string, h *Histogram) {
	cum, count, sum := h.snapshot()
	for i, bound := range h.bounds {
		w.WriteString(name)
		w.WriteString("_bucket")
		w.WriteString(mergeLE(labels, formatFloat(bound)))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(cum[i], 10))
		w.WriteByte('\n')
	}
	w.WriteString(name)
	w.WriteString("_bucket")
	w.WriteString(mergeLE(labels, "+Inf"))
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(count, 10))
	w.WriteByte('\n')

	writeSample(w, name+"_sum", labels, formatFloat(sum))
	writeSample(w, name+"_count", labels, strconv.FormatUint(count, 10))
}

// mergeLE appends le="bound" to an existing rendered label set.
func mergeLE(labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + le + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
