package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowLog writes one JSON line per query whose latency meets a
// threshold. A nil *SlowLog is a valid disabled logger: Slow always
// reports false and Record is a no-op, mirroring the nil-instrument
// convention of the registry.
type SlowLog struct {
	threshold time.Duration

	mu  sync.Mutex
	enc *json.Encoder

	logged Counter
}

// SlowQuery is one slow-query log entry. Query and Stages are
// caller-shaped (the compiled query shape and the pipeline's stage
// counters/timings); both marshal inline.
type SlowQuery struct {
	TS         string       `json:"ts"`
	TraceID    string       `json:"traceId,omitempty"`
	Route      string       `json:"route"`
	DurationMS float64      `json:"durationMs"`
	Query      any          `json:"query,omitempty"`
	Stages     any          `json:"stages,omitempty"`
	Spans      []SpanRecord `json:"spans,omitempty"`
	Err        string       `json:"error,omitempty"`
}

// NewSlowLog returns a logger writing JSON lines to w for queries
// taking at least threshold. A threshold <= 0 disables logging: the
// returned logger is nil.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if threshold <= 0 || w == nil {
		return nil
	}
	return &SlowLog{threshold: threshold, enc: json.NewEncoder(w)}
}

// Slow reports whether a query of duration d should be logged.
func (l *SlowLog) Slow(d time.Duration) bool {
	return l != nil && d >= l.threshold
}

// Threshold returns the configured threshold (0 when disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record writes one entry, stamping TS if unset. Serialised so
// concurrent handlers never interleave lines.
func (l *SlowLog) Record(q SlowQuery) {
	if l == nil {
		return
	}
	if q.TS == "" {
		q.TS = time.Now().UTC().Format(time.RFC3339Nano)
	}
	l.mu.Lock()
	err := l.enc.Encode(q)
	l.mu.Unlock()
	if err == nil {
		l.logged.Inc()
	}
}

// Logged returns how many entries were written (for tests/metrics).
func (l *SlowLog) Logged() uint64 {
	if l == nil {
		return 0
	}
	return l.logged.Value()
}
