// Package obs is bestring's zero-dependency observability layer: a
// metrics registry with Prometheus text exposition, request-scoped
// trace spans carried on context.Context, and a structured slow-query
// log.
//
// Design rules (see DESIGN.md §10):
//
//   - Every instrument is safe for concurrent use and safe as a nil
//     receiver. A nil *Registry hands out nil instruments whose
//     methods are no-ops, so instrumented code never branches on
//     "metrics enabled?" — the disabled path is a nil check inlined at
//     the call site. Bench E15 measures exactly this on/off delta.
//   - Counters and gauges are single atomics. Histograms are
//     lock-striped: each stripe owns an independent set of atomic
//     bucket counters plus a CAS-updated float sum, and a scrape sums
//     across stripes. Writers never share a cache line with readers
//     for longer than one atomic op, and the package is clean under
//     the race detector.
//   - Metric names follow prometheus conventions: `bestring_` prefix,
//     `_total` for counters, `_seconds`/`_bytes` base units. Label
//     cardinality must be bounded by code, never by request content
//     (routes yes, image ids no).
package obs

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds named metric families and renders them in
// Prometheus text exposition format. The zero value is not usable;
// call NewRegistry. A nil *Registry is valid everywhere and turns the
// whole API into no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted lazily at exposition time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: a help string, a kind, and one series per
// distinct label set.
type family struct {
	name string
	help string
	kind metricKind

	mu     sync.Mutex
	series map[string]*seriesEntry

	// Callback families (GaugeFunc / CounterFunc / GaugeVec) are
	// evaluated at scrape time so one snapshot call can feed several
	// series coherently.
	vecLabel string
	vecFn    func() []Sample
}

type seriesEntry struct {
	labels string // rendered `{k="v",...}` suffix, possibly ""
	c      *Counter
	g      *Gauge
	gfn    func() float64
	cfn    func() float64
	h      *Histogram
}

// Sample is one dynamically-labelled gauge value, as produced by a
// GaugeVec callback.
type Sample struct {
	Label string
	Value float64
}

func (r *Registry) getFamily(name, help string, kind metricKind) *family {
	if err := checkName(name); err != nil {
		panic("obs: " + err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*seriesEntry)}
		r.families[name] = f
		r.names = append(r.names, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// Counter returns the counter for name and the given label pairs,
// registering it on first use. Labels are "key, value" pairs; the same
// name+labels always returns the same instrument. Nil-safe.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindCounter)
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[ls]; ok {
		return s.c
	}
	c := &Counter{}
	f.series[ls] = &seriesEntry{labels: ls, c: c}
	return c
}

// CounterFunc registers a counter whose value is produced by fn at
// scrape time. Use it to expose an existing cumulative count without
// double accounting. Nil-safe.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, kindCounter)
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[ls]; ok {
		panic(fmt.Sprintf("obs: duplicate CounterFunc %s%s", name, ls))
	}
	f.series[ls] = &seriesEntry{labels: ls, cfn: fn}
}

// Gauge returns a settable gauge. Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindGauge)
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[ls]; ok {
		return s.g
	}
	g := &Gauge{}
	f.series[ls] = &seriesEntry{labels: ls, g: g}
	return g
}

// GaugeFunc registers a gauge whose value is produced by fn at scrape
// time. fn must be safe to call concurrently. Nil-safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, kindGauge)
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[ls]; ok {
		panic(fmt.Sprintf("obs: duplicate GaugeFunc %s%s", name, ls))
	}
	f.series[ls] = &seriesEntry{labels: ls, gfn: fn}
}

// GaugeVec registers a gauge family whose children carry one dynamic
// label (labelKey) and are produced together by fn at scrape time —
// one callback, one coherent snapshot (e.g. per-follower lag). The
// family is emitted even when fn returns no samples, so dashboards and
// smoke tests can assert its presence before any child exists.
// Nil-safe.
func (r *Registry) GaugeVec(name, help, labelKey string, fn func() []Sample) {
	if r == nil {
		return
	}
	if err := checkLabelName(labelKey); err != nil {
		panic("obs: " + err.Error())
	}
	f := r.getFamily(name, help, kindGauge)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.vecFn != nil || len(f.series) > 0 {
		panic(fmt.Sprintf("obs: GaugeVec %q conflicts with existing series", name))
	}
	f.vecLabel = labelKey
	f.vecFn = fn
}

// Histogram returns the histogram for name+labels, registering it on
// first use with the given upper bucket bounds (ascending; +Inf is
// implicit). Re-registering with different bounds panics. Nil-safe.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindHistogram)
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[ls]; ok {
		if len(s.h.bounds) != len(buckets) {
			panic(fmt.Sprintf("obs: histogram %s%s re-registered with different buckets", name, ls))
		}
		return s.h
	}
	h := newHistogram(buckets)
	f.series[ls] = &seriesEntry{labels: ls, h: h}
	return h
}

// --- Counter ---

// Counter is a monotonically increasing uint64. All methods are
// nil-safe no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative; negative deltas are ignored).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- Gauge ---

// Gauge is a settable float64. All methods are nil-safe no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// --- Histogram ---

// histStripes is the number of independent shards a histogram spreads
// concurrent Observe calls across. Must be a power of two.
const histStripes = 8

type histStripe struct {
	counts  []atomic.Uint64 // one per bound, +Inf tracked via total
	total   atomic.Uint64
	sumBits atomic.Uint64
	_       [32]byte // keep stripes off each other's cache lines
}

// Histogram is a fixed-bucket, lock-striped histogram. Observe picks a
// random stripe (math/rand/v2 is cheap and per-P), bumps one atomic
// bucket counter, and CAS-adds the float sum; a scrape sums across
// stripes, so cumulative bucket counts are monotone by construction.
// All methods are nil-safe no-ops.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	stripes [histStripes]histStripe
}

func newHistogram(buckets []float64) *Histogram {
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	h := &Histogram{bounds: bounds}
	for i := range h.stripes {
		h.stripes[i].counts = make([]atomic.Uint64, len(bounds))
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	s := &h.stripes[rand.Uint32()&(histStripes-1)]
	if i := sort.SearchFloat64s(h.bounds, v); i < len(h.bounds) {
		s.counts[i].Add(1)
	}
	s.total.Add(1)
	for {
		old := s.sumBits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, nb) {
			break
		}
	}
}

// snapshot returns cumulative per-bound counts (excluding +Inf), the
// total observation count, and the sum.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.bounds))
	for si := range h.stripes {
		s := &h.stripes[si]
		for bi := range s.counts {
			cum[bi] += s.counts[bi].Load()
		}
		count += s.total.Load()
		sum += math.Float64frombits(s.sumBits.Load())
	}
	for i := 1; i < len(cum); i++ {
		cum[i] += cum[i-1]
	}
	return cum, count, sum
}

// Count returns the number of observations so far (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.stripes {
		n += h.stripes[i].total.Load()
	}
	return n
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	var sum float64
	for i := range h.stripes {
		sum += math.Float64frombits(h.stripes[i].sumBits.Load())
	}
	return sum
}

// ExpBuckets returns n strictly ascending bounds: start, start*factor,
// start*factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start>0, factor>1, n>=1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DurationBuckets is the standard latency layout used across the
// engine: powers of two from 1µs to ~16.8s (25 bounds). Log-spaced so
// one layout covers in-memory stage times and fsync-bound commits.
func DurationBuckets() []float64 {
	return ExpBuckets(1e-6, 2, 25)
}

// SizeBuckets is the standard count/size layout: powers of two from
// 1 to 2048 (12 bounds); used for batch sizes and candidate counts.
func SizeBuckets() []float64 {
	return ExpBuckets(1, 2, 12)
}

// --- label and name plumbing ---

func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid label name %q", name)
		}
	}
	return nil
}

// renderLabels turns ("k1", "v1", "k2", "v2") into `{k1="v1",k2="v2"}`
// with keys sorted, so the same set always maps to the same series.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: labels must be key, value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		if err := checkLabelName(pairs[i]); err != nil {
			panic("obs: " + err.Error())
		}
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
