package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Counters must be exact under concurrent writers; run with -race.
func TestCounterConcurrentExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bestring_test_ops_total", "ops")
	const workers, perWorker = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// Histograms must not lose observations across stripes, the +Inf
// bucket must equal _count, and cumulative buckets must be monotone.
func TestHistogramConcurrentExactAndMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bestring_test_seconds", "latency", DurationBuckets())
	const workers, perWorker = 16, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// spread observations across the full bucket range,
				// including beyond the last bound (+Inf territory)
				h.Observe(1e-6 * math.Pow(2, float64((seed+i)%30)))
			}
		}(w)
	}
	wg.Wait()

	cum, count, sum := h.snapshot()
	if count != workers*perWorker {
		t.Fatalf("count = %d, want %d", count, workers*perWorker)
	}
	if h.Count() != count {
		t.Fatalf("Count() = %d, want %d", h.Count(), count)
	}
	if sum <= 0 {
		t.Fatalf("sum = %v, want > 0", sum)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket %d (%d) < bucket %d (%d): not monotone", i, cum[i], i-1, cum[i-1])
		}
	}
	if cum[len(cum)-1] > count {
		t.Fatalf("largest finite bucket %d > count %d", cum[len(cum)-1], count)
	}
	// values at %30 hit exponents 25..29 above the last bound (2^24µs)
	if cum[len(cum)-1] == count {
		t.Fatalf("expected some observations above the last bound")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("bestring_test_gauge", "g")
	g.Set(2.5)
	g.Add(-1)
	if v := g.Value(); v != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", v)
	}
}

// Nil registry and nil instruments must be safe everywhere — this is
// the "metrics off" mode E15 measures.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "x")
	g := r.Gauge("x", "x")
	h := r.Histogram("x", "x", SizeBuckets())
	r.GaugeFunc("x", "x", func() float64 { return 0 })
	r.CounterFunc("x", "x", func() float64 { return 0 })
	r.GaugeVec("x", "x", "k", func() []Sample { return nil })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if err := r.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var tr *Trace
	tr.StartSpan("a").End()
	tr.AddSpan("b", time.Now(), time.Second)
	if tr.ID() != "" || tr.Spans() != nil {
		t.Fatal("nil trace must be inert")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("no trace on fresh context")
	}
	var sl *SlowLog
	if sl.Slow(time.Hour) {
		t.Fatal("nil slowlog never slow")
	}
	sl.Record(SlowQuery{})
}

func TestSameSeriesSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("bestring_test_total", "t", "route", "search")
	b := r.Counter("bestring_test_total", "t", "route", "search")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("bestring_test_total", "t", "route", "images")
	if a == c {
		t.Fatal("different labels must be distinct series")
	}
}

// checkExposition validates the text format invariants the CI smoke
// also asserts: one # TYPE per family, no duplicate series, every
// sample line is "name{labels} value" with a parseable value, and
// histogram buckets are cumulative with +Inf == _count.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	types := map[string]bool{}
	series := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			if types[parts[2]] {
				t.Fatalf("duplicate # TYPE for %s", parts[2])
			}
			types[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("bad sample line: %q", line)
		}
		key, val := line[:idx], line[idx+1:]
		if series[key] {
			t.Fatalf("duplicate series %q", key)
		}
		series[key] = true
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
		}
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("bestring_ops_total", "ops", "route", "search").Add(7)
	r.Counter("bestring_ops_total", "ops", "route", "img\"s\\h").Inc()
	r.Gauge("bestring_up", "up").Set(1)
	r.GaugeFunc("bestring_images", "images", func() float64 { return 42 })
	r.CounterFunc("bestring_groups_total", "groups", func() float64 { return 9 })
	r.GaugeVec("bestring_lag", "lag", "follower", func() []Sample {
		return []Sample{{Label: "f2", Value: 3}, {Label: "f1", Value: 1}}
	})
	h := r.Histogram("bestring_lat_seconds", "lat", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(99) // above last bound

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	checkExposition(t, text)

	for _, want := range []string{
		`bestring_ops_total{route="search"} 7`,
		`bestring_ops_total{route="img\"s\\h"} 1`,
		"bestring_up 1",
		"bestring_images 42",
		"# TYPE bestring_groups_total counter",
		"bestring_groups_total 9",
		`bestring_lag{follower="f1"} 1`,
		`bestring_lat_seconds_bucket{le="0.001"} 1`,
		`bestring_lat_seconds_bucket{le="0.1"} 2`,
		`bestring_lat_seconds_bucket{le="+Inf"} 3`,
		"bestring_lat_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// families must come out sorted by name
	posGroups := strings.Index(text, "# TYPE bestring_groups_total")
	posUp := strings.Index(text, "# TYPE bestring_up")
	if posGroups > posUp {
		t.Fatal("families not sorted by name")
	}
}

func TestGaugeVecEmptyStillEmitsFamily(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("bestring_repl_follower_lag_lsn", "lag", "follower", func() []Sample { return nil })
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE bestring_repl_follower_lag_lsn gauge") {
		t.Fatalf("empty GaugeVec family must still expose TYPE line:\n%s", buf.String())
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("abc123")
	if tr.ID() != "abc123" {
		t.Fatalf("id = %q", tr.ID())
	}
	ctx := WithTrace(context.Background(), tr)
	got := FromContext(ctx)
	if got != tr {
		t.Fatal("trace must round-trip through context")
	}
	sp := got.StartSpan("stage.index")
	time.Sleep(time.Millisecond)
	sp.End()
	got.AddSpan("stage.rank", time.Now(), 5*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "stage.index" || spans[0].DurUS < 900 {
		t.Fatalf("bad first span: %+v", spans[0])
	}
	if spans[1].Name != "stage.rank" || spans[1].DurUS != 5000 {
		t.Fatalf("bad second span: %+v", spans[1])
	}
}

func TestNewTraceMintsID(t *testing.T) {
	a, b := NewTrace(""), NewTrace("")
	if a.ID() == "" || a.ID() == b.ID() {
		t.Fatalf("minted ids must be non-empty and distinct: %q %q", a.ID(), b.ID())
	}
	if !ValidRequestID(a.ID()) {
		t.Fatalf("minted id %q must be valid", a.ID())
	}
}

func TestValidRequestID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc-DEF_123.x":         true,
		"":                      false,
		"has space":             false,
		"inj\nected":            false,
		strings.Repeat("a", 64): true,
		strings.Repeat("a", 65): false,
	} {
		if got := ValidRequestID(id); got != want {
			t.Errorf("ValidRequestID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestSlowLogThresholdAndShape(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 10*time.Millisecond)
	if l.Slow(9 * time.Millisecond) {
		t.Fatal("below threshold must not be slow")
	}
	if !l.Slow(10 * time.Millisecond) {
		t.Fatal("at threshold must be slow")
	}
	l.Record(SlowQuery{
		TraceID:    "deadbeef",
		Route:      "/api/v1/search",
		DurationMS: 12.5,
		Query:      map[string]any{"dsl": "A left-of B", "k": 10},
		Stages:     map[string]any{"indexed": 100, "evaluated": 7},
		Spans:      []SpanRecord{{Name: "query", StartUS: 0, DurUS: 12500}},
	})
	if l.Logged() != 1 {
		t.Fatalf("logged = %d, want 1", l.Logged())
	}
	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, buf.String())
	}
	for _, k := range []string{"ts", "traceId", "route", "durationMs", "query", "stages", "spans"} {
		if _, ok := entry[k]; !ok {
			t.Fatalf("slow log entry missing %q: %s", k, buf.String())
		}
	}
	if _, err := time.Parse(time.RFC3339Nano, entry["ts"].(string)); err != nil {
		t.Fatalf("ts not RFC3339Nano: %v", err)
	}
	if NewSlowLog(&buf, 0) != nil {
		t.Fatal("threshold 0 must disable the log")
	}
}

func TestSlowLogConcurrentLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, time.Nanosecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Record(SlowQuery{Route: "/r", DurationMS: 1})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("lines = %d, want 400", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	db := DurationBuckets()
	if db[0] != 1e-6 || len(db) != 25 {
		t.Fatalf("duration buckets: first %v, len %d", db[0], len(db))
	}
}
