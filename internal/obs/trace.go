package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"
)

// A Trace is one request-scoped collection of timed spans, identified
// by an X-Request-Id style id. Traces travel on context.Context via
// WithTrace/FromContext; every method is nil-safe so instrumented code
// can run with no trace attached at zero branching cost.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []SpanRecord
}

// SpanRecord is one finished span, offsets relative to trace start.
type SpanRecord struct {
	Name    string `json:"name"`
	StartUS int64  `json:"startUs"`
	DurUS   int64  `json:"durUs"`
}

// NewTrace starts a trace with the given id; an empty id mints one.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewRequestID()
	}
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Spans returns a copy of the finished spans so far.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// AddSpan records an already-measured segment (used by code that
// times work itself, e.g. the pipeline's stage timers).
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	rec := SpanRecord{Name: name, StartUS: start.Sub(t.start).Microseconds(), DurUS: d.Microseconds()}
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Span is an in-flight timed section; End records it on its trace.
type Span struct {
	t     *Trace
	name  string
	start time.Time
}

// StartSpan opens a span. On a nil trace it returns nil, and
// (*Span)(nil).End() is a no-op, so `defer tr.StartSpan("x").End()`
// is always safe.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// End finishes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.AddSpan(s.name, s.start, time.Since(s.start))
}

type traceKey struct{}

// WithTrace attaches t to ctx (returns ctx unchanged when t is nil).
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the attached trace, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// NewRequestID mints a 16-hex-char request id. math/rand/v2 is seeded
// per process and lock-free per P; ids need to be unique-enough for
// log correlation, not cryptographic.
func NewRequestID() string {
	var b [8]byte
	v := rand.Uint64()
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether an incoming X-Request-Id is safe to
// propagate: 1–64 chars of [A-Za-z0-9._-]. Anything else is replaced
// with a fresh id so logs and headers can't be polluted.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, c := range id {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}
