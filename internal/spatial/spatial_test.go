package spatial

import (
	"testing"
	"testing/quick"
)

func TestClassifyKnownCases(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want Relation
	}{
		{"before", Interval{0, 2}, Interval{5, 9}, Before},
		{"meets", Interval{0, 5}, Interval{5, 9}, Meets},
		{"overlaps", Interval{0, 6}, Interval{5, 9}, Overlaps},
		{"starts", Interval{5, 7}, Interval{5, 9}, Starts},
		{"during", Interval{6, 8}, Interval{5, 9}, During},
		{"finishes", Interval{7, 9}, Interval{5, 9}, Finishes},
		{"equals", Interval{5, 9}, Interval{5, 9}, Equals},
		{"finished-by", Interval{5, 9}, Interval{7, 9}, FinishedBy},
		{"contains", Interval{5, 9}, Interval{6, 8}, Contains},
		{"started-by", Interval{5, 9}, Interval{5, 7}, StartedBy},
		{"overlapped-by", Interval{5, 9}, Interval{0, 6}, OverlappedBy},
		{"met-by", Interval{5, 9}, Interval{0, 5}, MetBy},
		{"after", Interval{5, 9}, Interval{0, 2}, After},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(tt.a, tt.b); got != tt.want {
				t.Errorf("Classify(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestClassifyDegenerate(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want Relation
	}{
		{"point starts interval", Interval{5, 5}, Interval{5, 9}, Starts},
		{"point finishes interval", Interval{9, 9}, Interval{5, 9}, Finishes},
		{"point during interval", Interval{7, 7}, Interval{5, 9}, During},
		{"point equals point", Interval{5, 5}, Interval{5, 5}, Equals},
		{"point before point", Interval{3, 3}, Interval{5, 5}, Before},
		{"point meets nothing (distinct points)", Interval{5, 5}, Interval{6, 6}, Before},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(tt.a, tt.b); got != tt.want {
				t.Errorf("Classify(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

// TestClassifyInverseConsistency: Classify(b, a) must equal the declared
// inverse of Classify(a, b), for all interval pairs.
func TestClassifyInverseConsistency(t *testing.T) {
	f := func(alo, alen, blo, blen uint8) bool {
		a := Interval{int(alo), int(alo) + int(alen)}
		b := Interval{int(blo), int(blo) + int(blen)}
		return Classify(b, a) == Classify(a, b).Inverse()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInverseIsInvolution(t *testing.T) {
	for _, r := range AllRelations {
		if got := r.Inverse().Inverse(); got != r {
			t.Errorf("%v: double inverse = %v", r, got)
		}
	}
}

func TestExactlyOneRelationHolds(t *testing.T) {
	// Classification is total and deterministic: re-classifying the same
	// pair always returns the same single relation, and every one of the 13
	// relations is reachable.
	seen := make(map[Relation]bool)
	for alo := 0; alo <= 4; alo++ {
		for ahi := alo; ahi <= 4; ahi++ {
			for blo := 0; blo <= 4; blo++ {
				for bhi := blo; bhi <= 4; bhi++ {
					r := Classify(Interval{alo, ahi}, Interval{blo, bhi})
					if r < Before || r > After {
						t.Fatalf("Classify returned invalid relation %v", r)
					}
					seen[r] = true
				}
			}
		}
	}
	for _, r := range AllRelations {
		if !seen[r] {
			t.Errorf("relation %v never produced over exhaustive small intervals", r)
		}
	}
}

func TestCategoryCoarsening(t *testing.T) {
	wantCat := map[Relation]Category{
		Before: CatDisjoint, After: CatDisjoint,
		Meets: CatAdjoin, MetBy: CatAdjoin,
		Overlaps: CatPartial, OverlappedBy: CatPartial,
		Equals: CatEqual,
		During: CatContainment, Contains: CatContainment,
		Starts: CatContainment, StartedBy: CatContainment,
		Finishes: CatContainment, FinishedBy: CatContainment,
	}
	for r, want := range wantCat {
		if got := r.Category(); got != want {
			t.Errorf("%v.Category() = %v, want %v", r, got, want)
		}
	}
}

func TestCategoryInverseInvariant(t *testing.T) {
	// A relation and its inverse always share a category.
	for _, r := range AllRelations {
		if r.Category() != r.Inverse().Category() {
			t.Errorf("%v and its inverse differ in category", r)
		}
	}
}

func TestOrientationConsistency(t *testing.T) {
	// Orientation derived from the relation must agree with directly
	// comparing the begin coordinates.
	f := func(alo, alen, blo, blen uint8) bool {
		a := Interval{int(alo), int(alo) + int(alen)}
		b := Interval{int(blo), int(blo) + int(blen)}
		var want Orientation
		switch {
		case a.Lo < b.Lo:
			want = BeginBefore
		case a.Lo > b.Lo:
			want = BeginAfter
		default:
			want = BeginSame
		}
		return Classify(a, b).Orientation() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrientationInverseFlips(t *testing.T) {
	for _, r := range AllRelations {
		o, oi := r.Orientation(), r.Inverse().Orientation()
		switch o {
		case BeginBefore:
			if oi != BeginAfter {
				t.Errorf("%v: inverse orientation = %v, want begin-after", r, oi)
			}
		case BeginAfter:
			if oi != BeginBefore {
				t.Errorf("%v: inverse orientation = %v, want begin-before", r, oi)
			}
		case BeginSame:
			if oi != BeginSame {
				t.Errorf("%v: inverse orientation = %v, want begin-same", r, oi)
			}
		}
	}
}

func TestPairInverse(t *testing.T) {
	p := Pair{X: Before, Y: Contains}
	inv := p.Inverse()
	if inv.X != After || inv.Y != During {
		t.Errorf("Pair inverse = %v", inv)
	}
}

func TestStringsAreNamed(t *testing.T) {
	for _, r := range AllRelations {
		if s := r.String(); len(s) == 0 || s[0] == 'R' {
			t.Errorf("relation %d has no name: %q", r, s)
		}
	}
	for _, c := range []Category{CatDisjoint, CatAdjoin, CatPartial, CatContainment, CatEqual} {
		if s := c.String(); len(s) == 0 || s[0] == 'C' {
			t.Errorf("category %d has no name: %q", c, s)
		}
	}
	for _, o := range []Orientation{BeginBefore, BeginSame, BeginAfter} {
		if s := o.String(); len(s) == 0 || s[0] == 'O' {
			t.Errorf("orientation %d has no name: %q", o, s)
		}
	}
}
