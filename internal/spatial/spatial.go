// Package spatial classifies the pairwise spatial relationships between
// MBRs that the 2-D string family (2-D string, 2D G-/C-/B-string) reasons
// about: Allen's 13 interval relations per axis, giving the 13x13 = 169
// two-dimensional relations, plus the coarser categories used by the
// type-0/1/2 similarity definitions.
package spatial

import "fmt"

// Interval is a 1-D projection [Lo, Hi] of an MBR (Lo <= Hi; degenerate
// point intervals allowed).
type Interval struct {
	Lo int
	Hi int
}

// Relation is one of Allen's 13 interval relations, "a <relation> b".
type Relation uint8

// The 13 Allen relations. Inverses are paired: Before/After, Meets/MetBy,
// Overlaps/OverlappedBy, Starts/StartedBy, During/Contains,
// Finishes/FinishedBy; Equals is its own inverse.
const (
	Before       Relation = iota + 1 // a ends strictly before b begins
	Meets                            // a ends exactly where b begins
	Overlaps                         // a begins first, they partially overlap
	Starts                           // same begin, a ends first
	During                           // a strictly inside b
	Finishes                         // same end, a begins later
	Equals                           // identical projections
	FinishedBy                       // same end, a begins first (inverse Finishes)
	Contains                         // b strictly inside a (inverse During)
	StartedBy                        // same begin, a ends later (inverse Starts)
	OverlappedBy                     // b begins first, partial overlap (inverse Overlaps)
	MetBy                            // b ends exactly where a begins (inverse Meets)
	After                            // b ends strictly before a begins (inverse Before)
)

// AllRelations lists the 13 relations in declaration order.
var AllRelations = []Relation{
	Before, Meets, Overlaps, Starts, During, Finishes, Equals,
	FinishedBy, Contains, StartedBy, OverlappedBy, MetBy, After,
}

// String names the relation.
func (r Relation) String() string {
	switch r {
	case Before:
		return "before"
	case Meets:
		return "meets"
	case Overlaps:
		return "overlaps"
	case Starts:
		return "starts"
	case During:
		return "during"
	case Finishes:
		return "finishes"
	case Equals:
		return "equals"
	case FinishedBy:
		return "finished-by"
	case Contains:
		return "contains"
	case StartedBy:
		return "started-by"
	case OverlappedBy:
		return "overlapped-by"
	case MetBy:
		return "met-by"
	case After:
		return "after"
	default:
		return fmt.Sprintf("Relation(%d)", uint8(r))
	}
}

// Inverse returns the relation of (b, a) given the relation of (a, b).
func (r Relation) Inverse() Relation {
	switch r {
	case Before:
		return After
	case Meets:
		return MetBy
	case Overlaps:
		return OverlappedBy
	case Starts:
		return StartedBy
	case During:
		return Contains
	case Finishes:
		return FinishedBy
	case FinishedBy:
		return Finishes
	case Contains:
		return During
	case StartedBy:
		return Starts
	case OverlappedBy:
		return Overlaps
	case MetBy:
		return Meets
	case After:
		return Before
	default:
		return r // Equals and invalid values are self-inverse
	}
}

func cmp(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Classify returns the Allen relation of a with respect to b. Degenerate
// (point) intervals are classified by the same decision tree, preferring
// begin/end equality over meets (so a point at b's begin "starts" b).
func Classify(a, b Interval) Relation {
	lo, hi := cmp(a.Lo, b.Lo), cmp(a.Hi, b.Hi)
	switch {
	case lo == 0 && hi == 0:
		return Equals
	case lo == 0 && hi < 0:
		return Starts
	case lo == 0:
		return StartedBy
	case hi == 0 && lo > 0:
		return Finishes
	case hi == 0:
		return FinishedBy
	case lo < 0 && hi > 0:
		return Contains
	case lo > 0 && hi < 0:
		return During
	case lo < 0: // hi < 0: a begins and ends first
		switch cmp(a.Hi, b.Lo) {
		case -1:
			return Before
		case 0:
			return Meets
		default:
			return Overlaps
		}
	default: // lo > 0, hi > 0: b begins and ends first
		switch cmp(b.Hi, a.Lo) {
		case -1:
			return After
		case 0:
			return MetBy
		default:
			return OverlappedBy
		}
	}
}

// Category is the 5-way coarsening of Allen relations that the 2D G-string
// literature splits into "global" (disjoint/adjoin/same-position) and
// "local" (partial overlap / containment) operator sets.
type Category uint8

// Relation categories.
const (
	CatDisjoint    Category = iota + 1 // before / after
	CatAdjoin                          // meets / met-by
	CatPartial                         // overlaps / overlapped-by
	CatContainment                     // during/contains/starts/started-by/finishes/finished-by
	CatEqual                           // equals
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatDisjoint:
		return "disjoint"
	case CatAdjoin:
		return "adjoin"
	case CatPartial:
		return "partial-overlap"
	case CatContainment:
		return "containment"
	case CatEqual:
		return "equal"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// Category returns the coarse class of the relation.
func (r Relation) Category() Category {
	switch r {
	case Before, After:
		return CatDisjoint
	case Meets, MetBy:
		return CatAdjoin
	case Overlaps, OverlappedBy:
		return CatPartial
	case Equals:
		return CatEqual
	default:
		return CatContainment
	}
}

// Orientation is the relative order of the two begin boundaries — the
// weakest signal the type-0 similarity level uses.
type Orientation uint8

// Orientations of a's begin relative to b's begin.
const (
	BeginBefore Orientation = iota + 1
	BeginSame
	BeginAfter
)

// String names the orientation.
func (o Orientation) String() string {
	switch o {
	case BeginBefore:
		return "begin-before"
	case BeginSame:
		return "begin-same"
	case BeginAfter:
		return "begin-after"
	default:
		return fmt.Sprintf("Orientation(%d)", uint8(o))
	}
}

// Orientation returns the begin-boundary order implied by the relation.
// Every Allen relation determines it uniquely.
func (r Relation) Orientation() Orientation {
	switch r {
	case Before, Meets, Overlaps, FinishedBy, Contains:
		return BeginBefore
	case Starts, StartedBy, Equals:
		return BeginSame
	default:
		return BeginAfter
	}
}

// Pair is the two-dimensional spatial relation of an ordered object pair:
// the Allen relation of their x-projections and of their y-projections
// (one of the 169 combinations).
type Pair struct {
	X Relation
	Y Relation
}

// Inverse returns the relation of the reversed pair.
func (p Pair) Inverse() Pair { return Pair{X: p.X.Inverse(), Y: p.Y.Inverse()} }

// String renders "x:<rel> y:<rel>".
func (p Pair) String() string { return "x:" + p.X.String() + " y:" + p.Y.String() }

// XProj returns the x-axis projection interval of a rectangle-like value.
func XProj(x0, x1 int) Interval { return Interval{Lo: x0, Hi: x1} }

// YProj returns the y-axis projection interval.
func YProj(y0, y1 int) Interval { return Interval{Lo: y0, Hi: y1} }
