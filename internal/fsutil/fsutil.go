// Package fsutil holds the crash-safety file primitives shared by the
// persistence layer and the write-ahead log: atomic whole-file replace
// and directory-entry fsync.
package fsutil

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// AtomicWriteFile replaces path with the bytes produced by write, so that
// a crash at any instant leaves either the complete old file or the
// complete new file — never a torn mix and never nothing. It writes a
// temp file in the same directory (rename does not work across
// filesystems), fsyncs it, renames it over path and fsyncs the directory
// so the rename itself survives a crash. On failure the temp file is
// removed and the original is untouched.
func AtomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+tempMarker+"*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so recent entry changes (created, renamed or
// removed files) are durable. Filesystems that cannot sync a directory
// handle (EINVAL/ENOTSUP) are tolerated: there is nothing stronger to do.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// tempMarker is the infix all AtomicWriteFile temp names carry; together
// with the leading dot it identifies litter an interrupted write (crash
// between CreateTemp and Rename) may have left behind.
const tempMarker = ".tmp-"

// SweepTemps removes leftover AtomicWriteFile temp files from dir. Call
// it only while holding whatever lock excludes concurrent writers of the
// directory — another process's in-flight temp file looks identical to
// stale litter.
func SweepTemps(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ".") || !strings.Contains(name, tempMarker) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// LockFile takes an exclusive, non-blocking advisory lock on path
// (creating it if needed), guarding a directory against concurrent
// writing processes. The lock lives as long as the returned file: Close
// it to release. A held lock makes the second opener fail immediately
// rather than interleave appends.
func LockFile(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%s is locked by another process: %w", path, err)
	}
	return f, nil
}
