package fsutil

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func readDirNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names
}

func TestAtomicWriteFileReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new content"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new content" {
		t.Fatalf("content %q", got)
	}
	if names := readDirNames(t, dir); len(names) != 1 {
		t.Fatalf("temp litter: %v", names)
	}
}

// TestAtomicWriteFileCrashKeepsOriginal simulates a save that dies
// mid-write: the previous good file must survive untouched and no temp
// file may be left behind. (This is the guarantee a plain os.Create
// rewrite cannot give: it truncates the good copy before the first byte
// of the new one lands.)
func TestAtomicWriteFileCrashKeepsOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.json")
	if err := os.WriteFile(path, []byte("good snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk died")
	err := AtomicWriteFile(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("half a snaps")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good snapshot" {
		t.Fatalf("original clobbered: %q", got)
	}
	if names := readDirNames(t, dir); len(names) != 1 || names[0] != "db.json" {
		t.Fatalf("temp litter after failure: %v", names)
	}
}

func TestAtomicWriteFileCreatesFresh(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.json")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("x"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

func TestLockFileExcludes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "LOCK")
	l1, err := LockFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LockFile(path); err == nil {
		t.Fatal("second lock acquired while the first is held")
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := LockFile(path)
	if err != nil {
		t.Fatalf("lock not released by Close: %v", err)
	}
	l2.Close()
}

func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{".db.json.tmp-123", ".snapshot-01.json.tmp-x", "db.json", "wal-01.log", ".hidden"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := SweepTemps(dir); err != nil {
		t.Fatal(err)
	}
	got := readDirNames(t, dir)
	want := []string{".hidden", "db.json", "wal-01.log"}
	if len(got) != len(want) {
		t.Fatalf("left %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("left %v, want %v", got, want)
		}
	}
}
