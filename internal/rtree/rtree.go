// Package rtree implements Guttman's R-tree (SIGMOD 1984) with quadratic
// node splitting — the paper's reference [1] and the representative of its
// second image-indexing category, "by size and location of the image
// icons". The retrieval system uses it as a spatial prefilter: icon MBRs
// from every stored image are indexed so that location-constrained queries
// ("an icon intersecting this region") narrow the candidate set before the
// BE-string LCS ranking runs.
//
// The tree is persistent-capable: Clone returns an O(1) logical copy and
// subsequent mutations on either tree copy only the nodes they touch
// (path copying keyed by a per-node ownership tag), sharing the rest.
// That is what lets imagedb publish each version of its spatial index as
// an immutable snapshot that concurrent readers traverse without locks.
package rtree

import (
	"fmt"
	"sort"

	"bestring/internal/core"
)

// Item is one indexed spatial entry: an MBR with an opaque identifier.
type Item struct {
	ID  string
	Box core.Rect
}

// cowTag marks the generation that owns a node. A tree may mutate a node
// in place only when the node's tag is the tree's own; any other node is
// copied first, so clones sharing structure can never observe each
// other's writes.
type cowTag struct{ _ byte }

// Tree is an R-tree over Items. The zero value is not ready; use New.
// Tree is not safe for concurrent mutation; callers serialise writers
// (imagedb does, under its writer mutex). Reads (SearchIntersect, Len)
// are safe concurrently with each other, and — after Clone — concurrent
// readers of one copy are isolated from mutations of the other.
type Tree struct {
	cow  *cowTag
	root *node
	max  int // maximum entries per node
	min  int // minimum entries per node (max/2)
	size int
}

// node is an internal or leaf R-tree node.
type node struct {
	cow     *cowTag
	leaf    bool
	entries []entry
}

// entry is a bounding box with either a child node (internal) or an item
// (leaf).
type entry struct {
	box   core.Rect
	child *node
	item  Item
}

// DefaultMaxEntries is the branching factor used by New when 0 is passed.
const DefaultMaxEntries = 8

// New returns an empty tree with the given maximum node occupancy
// (minimum is half of it). maxEntries < 4 is raised to 4.
func New(maxEntries int) *Tree {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	cow := &cowTag{}
	return &Tree{
		cow:  cow,
		root: &node{cow: cow, leaf: true},
		max:  maxEntries,
		min:  maxEntries / 2,
	}
}

// Clone returns a logical copy in O(1): both trees share every node until
// one of them mutates, at which point only the touched path is copied.
// After Clone, neither tree owns the shared nodes (both receive fresh
// ownership tags), so mutating either copy leaves the other bit-for-bit
// intact. Clone itself is not safe concurrently with mutations of t.
func (t *Tree) Clone() *Tree {
	out := *t
	t.cow = &cowTag{}
	out.cow = &cowTag{}
	return &out
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Bounds returns the minimum bounding rectangle of every stored item —
// the union of the root's entry boxes, maintained by insertion and
// condensation — and false when the tree is empty. O(root occupancy);
// the query planner reads it to relate a query region's area to the
// corpus extent without touching any item.
func (t *Tree) Bounds() (core.Rect, bool) {
	if t.size == 0 || len(t.root.entries) == 0 {
		return core.Rect{}, false
	}
	b := t.root.entries[0].box
	for _, e := range t.root.entries[1:] {
		b = b.Union(e.box)
	}
	return b, true
}

// mutable returns n if the tree owns it, or an owned copy otherwise —
// the single point where copy-on-write happens. The extra capacity slot
// keeps the common append-then-maybe-split path allocation-stable.
func (t *Tree) mutable(n *node) *node {
	if n.cow == t.cow {
		return n
	}
	c := &node{cow: t.cow, leaf: n.leaf}
	c.entries = append(make([]entry, 0, len(n.entries)+1), n.entries...)
	return c
}

// Insert adds an item.
func (t *Tree) Insert(id string, box core.Rect) {
	t.reinsert(entry{box: box, item: Item{ID: id, Box: box}})
	t.size++
}

// reinsert places an entry without touching the size counter (shared by
// Insert and the condensation reinserts, which move existing items).
func (t *Tree) reinsert(e entry) {
	root, split := t.insert(t.root, e)
	if split != nil {
		root = &node{cow: t.cow, entries: []entry{
			{box: mbrOf(root.entries), child: root},
			*split,
		}}
	}
	t.root = root
}

// insert adds e in the subtree under n, copying every node it touches
// that the tree does not own. It returns the (possibly copied) node and,
// when the node overflowed and split, the entry for the new sibling the
// caller must adopt.
func (t *Tree) insert(n *node, e entry) (*node, *entry) {
	n = t.mutable(n)
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.max {
			return t.splitNode(n)
		}
		return n, nil
	}
	best := chooseSubtree(n.entries, e.box)
	child, split := t.insert(n.entries[best].child, e)
	n.entries[best] = entry{box: mbrOf(child.entries), child: child}
	if split != nil {
		n.entries = append(n.entries, *split)
		if len(n.entries) > t.max {
			return t.splitNode(n)
		}
	}
	return n, nil
}

// splitNode applies the quadratic split to an owned, overflowing node,
// keeping the first group in place and returning the sibling entry.
func (t *Tree) splitNode(n *node) (*node, *entry) {
	a, b := splitQuadratic(n.entries, t.min)
	n.entries = a
	right := &node{cow: t.cow, leaf: n.leaf, entries: b}
	return n, &entry{box: mbrOf(b), child: right}
}

// chooseSubtree picks the child needing least enlargement for box
// (ties: smallest area) — Guttman's ChooseLeaf descent rule.
func chooseSubtree(entries []entry, box core.Rect) int {
	best := -1
	bestEnlarge, bestArea := 0, 0
	for i := range entries {
		u := entries[i].box.Union(box)
		enlarge := u.Area() - entries[i].box.Area()
		area := entries[i].box.Area()
		if best == -1 || enlarge < bestEnlarge ||
			(enlarge == bestEnlarge && area < bestArea) {
			best, bestEnlarge, bestArea = i, enlarge, area
		}
	}
	return best
}

// mbrOf returns the union of all entry boxes.
func mbrOf(es []entry) core.Rect {
	box := es[0].box
	for _, e := range es[1:] {
		box = box.Union(e.box)
	}
	return box
}

// splitQuadratic is Guttman's quadratic split: pick the two seeds wasting
// the most area together, then greedily assign the rest by preference,
// honouring the minimum fill.
func splitQuadratic(es []entry, minFill int) (a, b []entry) {
	seedA, seedB := pickSeeds(es)
	a = []entry{es[seedA]}
	b = []entry{es[seedB]}
	boxA, boxB := es[seedA].box, es[seedB].box
	rest := make([]entry, 0, len(es)-2)
	for i, e := range es {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Honour minimum fill.
		if len(a)+len(rest) == minFill {
			a = append(a, rest...)
			for _, e := range rest {
				boxA = boxA.Union(e.box)
			}
			break
		}
		if len(b)+len(rest) == minFill {
			b = append(b, rest...)
			for _, e := range rest {
				boxB = boxB.Union(e.box)
			}
			break
		}
		// Pick the entry with the strongest preference.
		bestIdx, bestDiff, preferA := -1, -1, true
		for i, e := range rest {
			dA := boxA.Union(e.box).Area() - boxA.Area()
			dB := boxB.Union(e.box).Area() - boxB.Area()
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff = diff
				bestIdx = i
				preferA = dA < dB || (dA == dB && len(a) < len(b))
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if preferA {
			a = append(a, e)
			boxA = boxA.Union(e.box)
		} else {
			b = append(b, e)
			boxB = boxB.Union(e.box)
		}
	}
	return a, b
}

// pickSeeds returns the pair of entries wasting the most area together.
func pickSeeds(es []entry) (int, int) {
	sa, sb, worst := 0, 1, -1
	for i := 0; i < len(es); i++ {
		for j := i + 1; j < len(es); j++ {
			u := es[i].box.Union(es[j].box)
			waste := u.Area() - es[i].box.Area() - es[j].box.Area()
			if waste > worst {
				worst, sa, sb = waste, i, j
			}
		}
	}
	return sa, sb
}

// SearchIntersect returns all items whose boxes intersect the query box,
// sorted by ID for determinism. It never mutates the tree, so any number
// of goroutines may search one (cloned or not) tree concurrently.
func (t *Tree) SearchIntersect(box core.Rect) []Item {
	var out []Item
	t.search(t.root, box, &out)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (t *Tree) search(n *node, box core.Rect, out *[]Item) {
	for i := range n.entries {
		if !n.entries[i].box.Intersects(box) {
			continue
		}
		if n.leaf {
			*out = append(*out, n.entries[i].item)
		} else {
			t.search(n.entries[i].child, box, out)
		}
	}
}

// Delete removes the item with the given id and box; it reports whether
// the item was found. Underflowing nodes are condensed by reinserting
// their remaining items (Guttman's CondenseTree, at item granularity),
// with the same copy-on-write discipline as Insert.
func (t *Tree) Delete(id string, box core.Rect) bool {
	root, found, orphans := t.delete(t.root, id, box)
	if !found {
		return false
	}
	t.root = root
	t.size--
	for _, it := range orphans {
		t.reinsert(entry{box: it.Box, item: it})
	}
	// Shrink the root while it has a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{cow: t.cow, leaf: true}
	}
	return true
}

// delete removes (id, box) from the subtree under n. It returns the
// (possibly copied) node, whether the item was found, and the items
// orphaned by condensing an underflowed descendant — the caller at the
// top reinserts them.
func (t *Tree) delete(n *node, id string, box core.Rect) (*node, bool, []Item) {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].item.ID == id && n.entries[i].item.Box == box {
				n = t.mutable(n)
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return n, true, nil
			}
		}
		return n, false, nil
	}
	for i := range n.entries {
		if !n.entries[i].box.Intersects(box) {
			continue
		}
		child, found, orphans := t.delete(n.entries[i].child, id, box)
		if !found {
			continue
		}
		n = t.mutable(n)
		if len(child.entries) < t.min {
			// Underflow: eliminate the child and orphan everything
			// beneath it for reinsertion.
			collectItems(child, &orphans)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			n.entries[i] = entry{box: mbrOf(child.entries), child: child}
		}
		return n, true, orphans
	}
	return n, false, nil
}

// collectItems gathers every item below n.
func collectItems(n *node, out *[]Item) {
	if n.leaf {
		for i := range n.entries {
			*out = append(*out, n.entries[i].item)
		}
		return
	}
	for i := range n.entries {
		collectItems(n.entries[i].child, out)
	}
}

// Validate checks the structural invariants: every internal entry's box
// equals the MBR of its child's entries, node occupancy within [min, max]
// (except the root), and uniform leaf depth.
func (t *Tree) Validate() error {
	depth := -1
	var walk func(n *node, level int, isRoot bool) error
	walk = func(n *node, level int, isRoot bool) error {
		if !isRoot && (len(n.entries) < t.min || len(n.entries) > t.max) {
			return fmt.Errorf("rtree: node occupancy %d outside [%d,%d]", len(n.entries), t.min, t.max)
		}
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("rtree: leaves at depths %d and %d", depth, level)
			}
			return nil
		}
		for i := range n.entries {
			child := n.entries[i].child
			if child == nil {
				return fmt.Errorf("rtree: internal entry without child")
			}
			if len(child.entries) > 0 && n.entries[i].box != mbrOf(child.entries) {
				return fmt.Errorf("rtree: stale bounding box %v (want %v)",
					n.entries[i].box, mbrOf(child.entries))
			}
			if err := walk(child, level+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0, true)
}
