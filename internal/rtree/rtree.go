// Package rtree implements Guttman's R-tree (SIGMOD 1984) with quadratic
// node splitting — the paper's reference [1] and the representative of its
// second image-indexing category, "by size and location of the image
// icons". The retrieval system uses it as a spatial prefilter: icon MBRs
// from every stored image are indexed so that location-constrained queries
// ("an icon intersecting this region") narrow the candidate set before the
// BE-string LCS ranking runs.
package rtree

import (
	"fmt"
	"sort"

	"bestring/internal/core"
)

// Item is one indexed spatial entry: an MBR with an opaque identifier.
type Item struct {
	ID  string
	Box core.Rect
}

// Tree is an R-tree over Items. The zero value is not ready; use New.
// Tree is not safe for concurrent use; callers wrap it (imagedb does).
type Tree struct {
	root *node
	max  int // maximum entries per node
	min  int // minimum entries per node (max/2)
	size int
}

// node is an internal or leaf R-tree node.
type node struct {
	leaf    bool
	entries []entry
}

// entry is a bounding box with either a child node (internal) or an item
// (leaf).
type entry struct {
	box   core.Rect
	child *node
	item  Item
}

// DefaultMaxEntries is the branching factor used by New when 0 is passed.
const DefaultMaxEntries = 8

// New returns an empty tree with the given maximum node occupancy
// (minimum is half of it). maxEntries < 4 is raised to 4.
func New(maxEntries int) *Tree {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{
		root: &node{leaf: true},
		max:  maxEntries,
		min:  maxEntries / 2,
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Insert adds an item.
func (t *Tree) Insert(id string, box core.Rect) {
	e := entry{box: box, item: Item{ID: id, Box: box}}
	leaf := t.chooseLeaf(t.root, e)
	leaf.entries = append(leaf.entries, e)
	t.size++
	if len(leaf.entries) > t.max {
		t.splitAndPropagate(leaf)
	}
}

// chooseLeaf descends to the leaf needing least enlargement for e.
func (t *Tree) chooseLeaf(n *node, e entry) *node {
	for !n.leaf {
		best := -1
		bestEnlarge, bestArea := 0, 0
		for i := range n.entries {
			u := n.entries[i].box.Union(e.box)
			enlarge := u.Area() - n.entries[i].box.Area()
			area := n.entries[i].box.Area()
			if best == -1 || enlarge < bestEnlarge ||
				(enlarge == bestEnlarge && area < bestArea) {
				best, bestEnlarge, bestArea = i, enlarge, area
			}
		}
		n.entries[best].box = n.entries[best].box.Union(e.box)
		n = n.entries[best].child
	}
	return n
}

// splitAndPropagate splits an overflowing node, walking up via re-search
// of the parent chain (the tree has no parent pointers; paths are short).
func (t *Tree) splitAndPropagate(n *node) {
	for {
		a, b := splitQuadratic(n.entries, t.min)
		if n == t.root {
			left := &node{leaf: n.leaf, entries: a}
			right := &node{leaf: n.leaf, entries: b}
			t.root = &node{entries: []entry{
				{box: mbrOf(a), child: left},
				{box: mbrOf(b), child: right},
			}}
			return
		}
		parent := t.findParent(t.root, n)
		// Replace n's entry by the two halves.
		right := &node{leaf: n.leaf, entries: b}
		n.entries = a
		for i := range parent.entries {
			if parent.entries[i].child == n {
				parent.entries[i].box = mbrOf(a)
				break
			}
		}
		parent.entries = append(parent.entries, entry{box: mbrOf(b), child: right})
		if len(parent.entries) <= t.max {
			return
		}
		n = parent
	}
}

// findParent locates the parent of target (nil if target is the root or
// absent).
func (t *Tree) findParent(n, target *node) *node {
	if n.leaf {
		return nil
	}
	for i := range n.entries {
		if n.entries[i].child == target {
			return n
		}
		if p := t.findParent(n.entries[i].child, target); p != nil {
			return p
		}
	}
	return nil
}

// mbrOf returns the union of all entry boxes.
func mbrOf(es []entry) core.Rect {
	box := es[0].box
	for _, e := range es[1:] {
		box = box.Union(e.box)
	}
	return box
}

// splitQuadratic is Guttman's quadratic split: pick the two seeds wasting
// the most area together, then greedily assign the rest by preference,
// honouring the minimum fill.
func splitQuadratic(es []entry, minFill int) (a, b []entry) {
	seedA, seedB := pickSeeds(es)
	a = []entry{es[seedA]}
	b = []entry{es[seedB]}
	boxA, boxB := es[seedA].box, es[seedB].box
	rest := make([]entry, 0, len(es)-2)
	for i, e := range es {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Honour minimum fill.
		if len(a)+len(rest) == minFill {
			a = append(a, rest...)
			for _, e := range rest {
				boxA = boxA.Union(e.box)
			}
			break
		}
		if len(b)+len(rest) == minFill {
			b = append(b, rest...)
			for _, e := range rest {
				boxB = boxB.Union(e.box)
			}
			break
		}
		// Pick the entry with the strongest preference.
		bestIdx, bestDiff, preferA := -1, -1, true
		for i, e := range rest {
			dA := boxA.Union(e.box).Area() - boxA.Area()
			dB := boxB.Union(e.box).Area() - boxB.Area()
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff = diff
				bestIdx = i
				preferA = dA < dB || (dA == dB && len(a) < len(b))
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if preferA {
			a = append(a, e)
			boxA = boxA.Union(e.box)
		} else {
			b = append(b, e)
			boxB = boxB.Union(e.box)
		}
	}
	return a, b
}

// pickSeeds returns the pair of entries wasting the most area together.
func pickSeeds(es []entry) (int, int) {
	sa, sb, worst := 0, 1, -1
	for i := 0; i < len(es); i++ {
		for j := i + 1; j < len(es); j++ {
			u := es[i].box.Union(es[j].box)
			waste := u.Area() - es[i].box.Area() - es[j].box.Area()
			if waste > worst {
				worst, sa, sb = waste, i, j
			}
		}
	}
	return sa, sb
}

// SearchIntersect returns all items whose boxes intersect the query box,
// sorted by ID for determinism.
func (t *Tree) SearchIntersect(box core.Rect) []Item {
	var out []Item
	t.search(t.root, box, &out)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (t *Tree) search(n *node, box core.Rect, out *[]Item) {
	for i := range n.entries {
		if !n.entries[i].box.Intersects(box) {
			continue
		}
		if n.leaf {
			*out = append(*out, n.entries[i].item)
		} else {
			t.search(n.entries[i].child, box, out)
		}
	}
}

// Delete removes the item with the given id and box; it reports whether
// the item was found. Underflowing nodes are condensed by reinserting
// their remaining entries (Guttman's CondenseTree).
func (t *Tree) Delete(id string, box core.Rect) bool {
	leaf, idx := t.findLeaf(t.root, id, box)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	// Shrink the root if it has a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	return true
}

// findLeaf locates the leaf holding (id, box).
func (t *Tree) findLeaf(n *node, id string, box core.Rect) (*node, int) {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].item.ID == id && n.entries[i].item.Box == box {
				return n, i
			}
		}
		return nil, -1
	}
	for i := range n.entries {
		if n.entries[i].box.Intersects(box) {
			if leaf, idx := t.findLeaf(n.entries[i].child, id, box); leaf != nil {
				return leaf, idx
			}
		}
	}
	return nil, -1
}

// condense removes underflowing nodes bottom-up and reinserts their
// orphaned items; it also tightens ancestor boxes.
func (t *Tree) condense(n *node) {
	for n != t.root {
		parent := t.findParent(t.root, n)
		if parent == nil {
			return
		}
		if len(n.entries) < t.min {
			// Remove n from its parent and reinsert its items.
			for i := range parent.entries {
				if parent.entries[i].child == n {
					parent.entries = append(parent.entries[:i], parent.entries[i+1:]...)
					break
				}
			}
			var orphans []Item
			collectItems(n, &orphans)
			t.size -= len(orphans)
			for _, it := range orphans {
				t.Insert(it.ID, it.Box)
			}
		} else {
			// Tighten the parent's box for n.
			for i := range parent.entries {
				if parent.entries[i].child == n {
					parent.entries[i].box = mbrOf(n.entries)
					break
				}
			}
		}
		n = parent
	}
}

// collectItems gathers every item below n.
func collectItems(n *node, out *[]Item) {
	if n.leaf {
		for i := range n.entries {
			*out = append(*out, n.entries[i].item)
		}
		return
	}
	for i := range n.entries {
		collectItems(n.entries[i].child, out)
	}
}

// Validate checks the structural invariants: every internal entry's box
// equals the MBR of its child's entries, node occupancy within [min, max]
// (except the root), and uniform leaf depth.
func (t *Tree) Validate() error {
	depth := -1
	var walk func(n *node, level int, isRoot bool) error
	walk = func(n *node, level int, isRoot bool) error {
		if !isRoot && (len(n.entries) < t.min || len(n.entries) > t.max) {
			return fmt.Errorf("rtree: node occupancy %d outside [%d,%d]", len(n.entries), t.min, t.max)
		}
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("rtree: leaves at depths %d and %d", depth, level)
			}
			return nil
		}
		for i := range n.entries {
			child := n.entries[i].child
			if child == nil {
				return fmt.Errorf("rtree: internal entry without child")
			}
			if len(child.entries) > 0 && n.entries[i].box != mbrOf(child.entries) {
				return fmt.Errorf("rtree: stale bounding box %v (want %v)",
					n.entries[i].box, mbrOf(child.entries))
			}
			if err := walk(child, level+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0, true)
}
