package rtree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bestring/internal/core"
)

func TestEmptyTree(t *testing.T) {
	tr := New(8)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.SearchIntersect(core.NewRect(0, 0, 100, 100)); len(got) != 0 {
		t.Errorf("search on empty tree = %v", got)
	}
	if tr.Delete("x", core.NewRect(0, 0, 1, 1)) {
		t.Error("Delete on empty tree reported success")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestInsertSearchBasic(t *testing.T) {
	tr := New(4)
	tr.Insert("a", core.NewRect(0, 0, 10, 10))
	tr.Insert("b", core.NewRect(20, 20, 30, 30))
	tr.Insert("c", core.NewRect(5, 5, 25, 25))
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.SearchIntersect(core.NewRect(8, 8, 9, 9))
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "c" {
		t.Errorf("search = %v, want a and c", got)
	}
	if got := tr.SearchIntersect(core.NewRect(100, 100, 110, 110)); len(got) != 0 {
		t.Errorf("disjoint search = %v", got)
	}
}

func TestSplitKeepsAllItems(t *testing.T) {
	tr := New(4)
	const n = 100
	for i := 0; i < n; i++ {
		x, y := (i%10)*10, (i/10)*10
		tr.Insert(fmt.Sprintf("item%03d", i), core.NewRect(x, y, x+5, y+5))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	all := tr.SearchIntersect(core.NewRect(0, 0, 200, 200))
	if len(all) != n {
		t.Fatalf("full search found %d items, want %d", len(all), n)
	}
}

func TestDeleteAndCondense(t *testing.T) {
	tr := New(4)
	boxes := make(map[string]core.Rect)
	for i := 0; i < 60; i++ {
		x, y := (i%8)*12, (i/8)*12
		id := fmt.Sprintf("item%02d", i)
		boxes[id] = core.NewRect(x, y, x+6, y+6)
		tr.Insert(id, boxes[id])
	}
	// Delete half.
	for i := 0; i < 60; i += 2 {
		id := fmt.Sprintf("item%02d", i)
		if !tr.Delete(id, boxes[id]) {
			t.Fatalf("Delete(%s) failed", id)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Validate after deleting %s: %v", id, err)
		}
	}
	if tr.Len() != 30 {
		t.Fatalf("Len = %d, want 30", tr.Len())
	}
	// Deleted items gone, kept items findable.
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("item%02d", i)
		found := false
		for _, it := range tr.SearchIntersect(boxes[id]) {
			if it.ID == id {
				found = true
			}
		}
		if want := i%2 == 1; found != want {
			t.Errorf("item %s found=%v, want %v", id, found, want)
		}
	}
}

func TestDeleteToEmpty(t *testing.T) {
	tr := New(4)
	for i := 0; i < 20; i++ {
		tr.Insert(fmt.Sprintf("i%d", i), core.NewRect(i, i, i+2, i+2))
	}
	for i := 0; i < 20; i++ {
		if !tr.Delete(fmt.Sprintf("i%d", i), core.NewRect(i, i, i+2, i+2)) {
			t.Fatalf("Delete i%d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Tree remains usable.
	tr.Insert("again", core.NewRect(0, 0, 5, 5))
	if got := tr.SearchIntersect(core.NewRect(1, 1, 2, 2)); len(got) != 1 {
		t.Errorf("reuse after emptying failed: %v", got)
	}
}

func TestDeleteWrongBox(t *testing.T) {
	tr := New(4)
	tr.Insert("a", core.NewRect(0, 0, 5, 5))
	if tr.Delete("a", core.NewRect(1, 1, 5, 5)) {
		t.Error("Delete with mismatched box should fail")
	}
	if tr.Len() != 1 {
		t.Error("failed delete changed size")
	}
}

// TestAgainstBruteForce cross-validates interleaved inserts, deletes and
// searches against a flat slice, checking tree invariants throughout.
func TestAgainstBruteForce(t *testing.T) {
	f := func(seed uint8, branching uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		tr := New(4 + int(branching%8))
		live := make(map[string]core.Rect)
		next := 0
		for op := 0; op < 150; op++ {
			switch {
			case len(live) > 0 && rng.Intn(3) == 0: // delete
				var id string
				for k := range live {
					id = k
					break
				}
				if !tr.Delete(id, live[id]) {
					return false
				}
				delete(live, id)
			default: // insert
				x0, y0 := rng.Intn(200), rng.Intn(200)
				box := core.NewRect(x0, y0, x0+rng.Intn(40), y0+rng.Intn(40))
				id := fmt.Sprintf("n%d", next)
				next++
				tr.Insert(id, box)
				live[id] = box
			}
			if tr.Len() != len(live) {
				return false
			}
			if err := tr.Validate(); err != nil {
				return false
			}
		}
		// Final search cross-check on random windows.
		for q := 0; q < 20; q++ {
			x0, y0 := rng.Intn(200), rng.Intn(200)
			win := core.NewRect(x0, y0, x0+rng.Intn(80), y0+rng.Intn(80))
			got := tr.SearchIntersect(win)
			want := 0
			for _, box := range live {
				if box.Intersects(win) {
					want++
				}
			}
			if len(got) != want {
				return false
			}
			for _, it := range got {
				if !live[it.ID].Intersects(win) || live[it.ID] != it.Box {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDuplicateBoxesAllowed(t *testing.T) {
	tr := New(4)
	box := core.NewRect(0, 0, 10, 10)
	for i := 0; i < 10; i++ {
		tr.Insert(fmt.Sprintf("dup%d", i), box)
	}
	if got := tr.SearchIntersect(box); len(got) != 10 {
		t.Errorf("found %d duplicates, want 10", len(got))
	}
	if !tr.Delete("dup3", box) {
		t.Error("deleting one duplicate failed")
	}
	if got := tr.SearchIntersect(box); len(got) != 9 {
		t.Errorf("found %d after delete, want 9", len(got))
	}
}

func TestNewClampsBranching(t *testing.T) {
	tr := New(1)
	for i := 0; i < 30; i++ {
		tr.Insert(fmt.Sprintf("i%d", i), core.NewRect(i, 0, i+1, 1))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate with clamped branching: %v", err)
	}
	if tr.Len() != 30 {
		t.Errorf("Len = %d", tr.Len())
	}
}

// items returns the full content of the tree as an id -> box map.
func items(tr *Tree) map[string]core.Rect {
	out := make(map[string]core.Rect)
	for _, it := range tr.SearchIntersect(core.NewRect(-1000, -1000, 10000, 10000)) {
		out[it.ID] = it.Box
	}
	return out
}

// TestCloneIsolation pins the copy-on-write contract: after Clone, any
// mix of inserts and deletes on the copy leaves the original bit-for-bit
// intact (and vice versa), while the copy sees its own mutations.
func TestCloneIsolation(t *testing.T) {
	base := New(4)
	boxes := make(map[string]core.Rect)
	for i := 0; i < 80; i++ {
		x, y := (i%9)*11, (i/9)*11
		id := fmt.Sprintf("base%02d", i)
		boxes[id] = core.NewRect(x, y, x+6, y+6)
		base.Insert(id, boxes[id])
	}
	before := items(base)

	cp := base.Clone()
	for i := 0; i < 80; i += 2 {
		id := fmt.Sprintf("base%02d", i)
		if !cp.Delete(id, boxes[id]) {
			t.Fatalf("clone Delete(%s) failed", id)
		}
	}
	for i := 0; i < 40; i++ {
		cp.Insert(fmt.Sprintf("new%02d", i), core.NewRect(i, 200, i+3, 203))
	}
	if err := cp.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base Validate after clone mutations: %v", err)
	}
	if got := items(base); !mapsEqual(got, before) {
		t.Fatalf("original changed under clone mutations: %d items, want %d", len(got), len(before))
	}
	if base.Len() != 80 || cp.Len() != 80 {
		t.Fatalf("Len: base %d want 80, clone %d want 80", base.Len(), cp.Len())
	}
	got := items(cp)
	for i := 0; i < 80; i++ {
		id := fmt.Sprintf("base%02d", i)
		if _, ok := got[id]; ok != (i%2 == 1) {
			t.Errorf("clone item %s present=%v, want %v", id, ok, i%2 == 1)
		}
	}
}

// TestCloneChainVersions builds a chain of clones (one mutation per
// version, as the snapshot engine does) and verifies every version still
// answers searches for exactly its own state.
func TestCloneChainVersions(t *testing.T) {
	versions := []*Tree{New(4)}
	sizes := []int{0}
	cur := versions[0]
	for i := 0; i < 64; i++ {
		next := cur.Clone()
		next.Insert(fmt.Sprintf("v%02d", i), core.NewRect(i, i, i+4, i+4))
		versions = append(versions, next)
		sizes = append(sizes, i+1)
		cur = next
	}
	// Delete half on further versions.
	for i := 0; i < 32; i++ {
		next := cur.Clone()
		if !next.Delete(fmt.Sprintf("v%02d", i*2), core.NewRect(i*2, i*2, i*2+4, i*2+4)) {
			t.Fatalf("version delete v%02d failed", i*2)
		}
		versions = append(versions, next)
		sizes = append(sizes, 64-i-1)
		cur = next
	}
	for v, tr := range versions {
		if tr.Len() != sizes[v] {
			t.Fatalf("version %d Len = %d, want %d", v, tr.Len(), sizes[v])
		}
		if got := len(items(tr)); got != sizes[v] {
			t.Fatalf("version %d holds %d items, want %d", v, got, sizes[v])
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("version %d Validate: %v", v, err)
		}
	}
}

func mapsEqual(a, b map[string]core.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
