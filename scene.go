package bestring

import (
	"context"
	"fmt"
	"image"
	"io"

	"bestring/internal/segment"
	"bestring/internal/workload"
)

// Scene generation and raster substrate, re-exported for examples and
// applications that need data to index.
type (
	// SceneConfig parameterises the synthetic scene generator.
	SceneConfig = workload.Config
	// SceneGenerator produces seeded random scenes and query
	// perturbations.
	SceneGenerator = workload.Generator
	// Palette maps icon labels to raster colours and back.
	Palette = segment.Palette
)

// NewSceneGenerator returns a seeded scene generator.
func NewSceneGenerator(cfg SceneConfig) *SceneGenerator {
	return workload.NewGenerator(cfg)
}

// ClassLabel names icon class i ("icon03").
func ClassLabel(i int) string { return workload.ClassLabel(i) }

// BulkInserter is the batch-write surface shared by DB and Store.
type BulkInserter interface {
	BulkInsert(ctx context.Context, items []BulkItem, parallelism int) error
}

// SeedScenes fills target with count generated scenes (ids scene0000,
// scene0001, … and name "synthetic") — the seeding path shared by
// `server -count` and `bestring store init`. Batches are chunked so a
// durable store, whose bulk batch becomes one bounded WAL record, can
// absorb arbitrarily large seeds; each chunk installs all-or-nothing.
func SeedScenes(ctx context.Context, target BulkInserter, cfg SceneConfig, count int) error {
	const chunk = 2048
	gen := NewSceneGenerator(cfg)
	for base := 0; base < count; base += chunk {
		items := make([]BulkItem, min(chunk, count-base))
		for i := range items {
			items[i] = BulkItem{
				ID: fmt.Sprintf("scene%04d", base+i), Name: "synthetic", Image: gen.Scene(),
			}
		}
		if err := target.BulkInsert(ctx, items, 0); err != nil {
			return err
		}
	}
	return nil
}

// NewPalette assigns a distinct colour to every label.
func NewPalette(labels []string) (*Palette, error) { return segment.NewPalette(labels) }

// Render rasterises a symbolic image (one colour per icon class).
func Render(img Image, p *Palette) (*image.RGBA, error) { return segment.Render(img, p) }

// ExtractImage recovers a symbolic image from a raster produced by Render
// — the icon-abstraction step the paper assumes precedes conversion.
func ExtractImage(raster image.Image, p *Palette, xmax, ymax int) (Image, error) {
	return segment.ExtractImage(raster, p, xmax, ymax)
}

// EncodePNG writes a raster as PNG.
func EncodePNG(w io.Writer, raster image.Image) error { return segment.EncodePNG(w, raster) }

// DecodePNG reads a PNG raster.
func DecodePNG(r io.Reader) (image.Image, error) { return segment.DecodePNG(r) }

// ASCII renders a symbolic image as terminal art (top row = top of image).
func ASCII(img Image, cols, rows int) string { return segment.ASCII(img, cols, rows) }
