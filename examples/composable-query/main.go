// Composable-query: the unified retrieval pipeline. One request combines
// ranked BE-LCS similarity with a spatial-predicate filter and a region
// window — "rank by similarity among images where a sun is above the sea,
// with a boat somewhere in this harbour area" — then pages through the
// ranking with a cursor, streams it, and plugs a custom scorer into the
// registry shared by the library, the CLI and the REST server.
package main

import (
	"context"
	"fmt"
	"log"

	"bestring"
)

func main() {
	ctx := context.Background()
	gen := bestring.NewSceneGenerator(bestring.SceneConfig{
		Seed: 7, Objects: 6, Vocabulary: 20,
	})
	db := bestring.NewDB()

	// A collection of random scenes; every third gets a sun-above-sea
	// pair, every fourth a boat in the harbour corner of the canvas.
	for i := 0; i < 60; i++ {
		scene := gen.Scene()
		if i%3 == 0 {
			scene = scene.
				WithObject(bestring.Object{Label: "sun", Box: bestring.NewRect(2, 16, 5, 19)}).
				WithObject(bestring.Object{Label: "sea", Box: bestring.NewRect(0, 0, 19, 5)})
		}
		if i%4 == 0 {
			scene = scene.WithObject(bestring.Object{Label: "boat", Box: bestring.NewRect(16, 4, 18, 6)})
		}
		if err := db.Insert(fmt.Sprintf("photo%03d", i), "collection", scene); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d scenes\n", db.Len())

	// The query image: a beach scene we half remember.
	query := bestring.NewImage(20, 20,
		bestring.Object{Label: "sun", Box: bestring.NewRect(3, 15, 6, 18)},
		bestring.Object{Label: "sea", Box: bestring.NewRect(0, 0, 19, 6)},
		bestring.Object{Label: "boat", Box: bestring.NewRect(15, 3, 17, 5)},
	)
	harbour := bestring.NewRect(14, 2, 19, 8)

	// One composed request: similarity ranking over the images that
	// satisfy the predicate AND have a boat icon in the harbour window.
	page, err := db.Query(ctx, bestring.NewQuery(query),
		bestring.WithK(3),
		bestring.Where("sun above sea"),
		bestring.InRegionLabel(harbour, "boat"),
		bestring.WithMinScore(0.1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimilarity ranking among sun-above-sea scenes with a harbour boat (%d match):\n", page.Total)
	for i, h := range page.Hits {
		fmt.Printf("  %d. %-10s score %.3f  predicate full=%v\n", i+1, h.ID, h.Score, h.Full)
	}

	// Cursor pagination: walk the same ranking three hits at a time.
	// The cursor stays valid while writers insert concurrently.
	fmt.Println("\npaging the full predicate match list:")
	cursor := ""
	for pageNo := 1; ; pageNo++ {
		p, err := db.Query(ctx, bestring.NewMatchQuery(),
			bestring.Where("sun above sea"),
			bestring.WithK(8),
			bestring.WithCursor(cursor),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  page %d: %d hits\n", pageNo, len(p.Hits))
		if p.NextCursor == "" {
			break
		}
		cursor = p.NextCursor
	}

	// Streaming: iterate the ranking without materialising it.
	streamed := 0
	for h, err := range db.QueryIter(ctx, bestring.NewQuery(query), bestring.WithMinScore(0.3)) {
		if err != nil {
			log.Fatal(err)
		}
		_ = h
		streamed++
	}
	fmt.Printf("\nstreamed %d results scoring >= 0.3\n", streamed)

	// Custom scorers join the shared registry and become addressable by
	// name everywhere (library, CLI -method, REST "scorer").
	if err := bestring.RegisterScorer("object-count", func(q bestring.Image, _ bestring.BEString, e bestring.Entry) float64 {
		d := len(q.Objects) - len(e.Image.Objects)
		if d < 0 {
			d = -d
		}
		return 1 / float64(1+d)
	}); err != nil {
		log.Fatal(err)
	}
	page, err = db.Query(ctx, bestring.NewQuery(query),
		bestring.WithK(1), bestring.WithScorer("object-count"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered scorers: %v\n", bestring.ScorerNames())
	fmt.Printf("best by object-count: %s (%.3f)\n", page.Hits[0].ID, page.Hits[0].Score)
}
