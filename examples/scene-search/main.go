// Scene-search: the content-based retrieval workflow the paper's
// introduction motivates — a database of scenes ("find all images where
// icon A is left of icon B"), ranked search with partial queries, and the
// raster pipeline (render to PNG, recover labelled MBRs, index).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bestring"
)

func main() {
	// Build a synthetic photo collection: 100 scenes over a 30-icon
	// vocabulary. Deterministic by seed.
	gen := bestring.NewSceneGenerator(bestring.SceneConfig{
		Seed: 2025, Objects: 8, Vocabulary: 30,
	})
	db := bestring.NewDB()
	var scenes []bestring.Image
	for i := 0; i < 100; i++ {
		scene := gen.Scene()
		scenes = append(scenes, scene)
		if err := db.Insert(fmt.Sprintf("photo%03d", i), "collection", scene); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d scenes\n", db.Len())

	// Query: photo 42, but we only remember 4 of its icons.
	query := gen.SubsetQuery(scenes[42], 4)
	fmt.Printf("query: %d remembered icons of photo042: %v\n",
		len(query.Objects), query.Labels())

	results, err := db.Search(context.Background(), query, bestring.SearchOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop 5:")
	for i, r := range results {
		marker := ""
		if r.ID == "photo042" {
			marker = "  <- the photo we remembered"
		}
		fmt.Printf("  %d. %-10s score %.4f%s\n", i+1, r.ID, r.Score, marker)
	}

	// The raster round trip: render the query to PNG, re-extract labelled
	// MBRs (the icon-abstraction step the paper assumes), and verify the
	// index is identical.
	labels := make([]string, 30)
	for i := range labels {
		labels[i] = bestring.ClassLabel(i)
	}
	palette, err := bestring.NewPalette(labels)
	if err != nil {
		log.Fatal(err)
	}
	raster, err := bestring.Render(query, palette)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "bestring-scene-search")
	if err != nil {
		log.Fatal(err)
	}
	pngPath := filepath.Join(dir, "query.png")
	f, err := os.Create(pngPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := bestring.EncodePNG(f, raster); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	back, err := bestring.ExtractImage(raster, palette, query.XMax, query.YMax)
	if err != nil {
		log.Fatal(err)
	}
	same := bestring.MustConvert(back).Equal(bestring.MustConvert(query))
	fmt.Printf("\nwrote %s; extract(render(query)) indexes identically: %v\n", pngPath, same)

	// Persist the database for the CLI (bestring search -dbfile ...).
	dbPath := filepath.Join(dir, "db.json")
	if err := db.SaveFile(dbPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved database to %s\n", dbPath)
}
