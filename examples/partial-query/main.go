// Partial-query retrieval: the paper's headline scenario — "the query
// targets and/or spatial relationships are not certain". A query missing
// most of a scene's icons, with the remembered boxes drawn imprecisely,
// is run against the BE-LCS scorer and against the clique-based type-0/1/2
// matching of the older 2-D string family; the graded LCS similarity keeps
// ranking the right image first while the boolean subgraph criteria
// degrade.
package main

import (
	"context"
	"fmt"
	"log"

	"bestring"
)

func main() {
	gen := bestring.NewSceneGenerator(bestring.SceneConfig{
		Seed: 33, Objects: 9, Vocabulary: 22,
	})
	db := bestring.NewDB()
	var scenes []bestring.Image
	for i := 0; i < 60; i++ {
		scene := gen.Scene()
		scenes = append(scenes, scene)
		if err := db.Insert(fmt.Sprintf("scene%02d", i), "", scene); err != nil {
			log.Fatal(err)
		}
	}

	const targetID = "scene27"
	target := scenes[27]
	fmt.Printf("target %s has icons %v\n", targetID, target.Labels())

	// The user remembers only 3 of 9 icons, and sketches their boxes with
	// up to 6 cells of error in each direction.
	query := gen.JitterQuery(gen.SubsetQuery(target, 3), 6)
	fmt.Printf("query: icons %v, boxes jittered by up to 6\n\n", query.Labels())

	scorers := []struct {
		name   string
		scorer bestring.Scorer
	}{
		{"be-lcs (paper)", bestring.BEScorer()},
		{"type-0 clique", bestring.TypeSimScorer(bestring.Type0)},
		{"type-1 clique", bestring.TypeSimScorer(bestring.Type1)},
		{"type-2 clique", bestring.TypeSimScorer(bestring.Type2)},
	}
	fmt.Printf("%-16s %-10s %-10s %s\n", "method", "rank", "score", "top result")
	for _, sc := range scorers {
		results, err := db.Search(context.Background(), query,
			bestring.SearchOptions{Scorer: sc.scorer})
		if err != nil {
			log.Fatal(err)
		}
		rank := 0
		for i, r := range results {
			if r.ID == targetID {
				rank = i + 1
				break
			}
		}
		fmt.Printf("%-16s %-10d %-10.4f %s @ %.4f\n",
			sc.name, rank, scoreOf(results, targetID), results[0].ID, results[0].Score)
	}

	fmt.Println("\nbe-lcs degrades gracefully: every remembered icon and every")
	fmt.Println("still-valid boundary ordering contributes to the score, so the")
	fmt.Println("target stays on top even when no pair satisfies type-2 exactly.")
}

// scoreOf finds the target's score in the ranked results.
func scoreOf(results []bestring.Result, id string) float64 {
	for _, r := range results {
		if r.ID == id {
			return r.Score
		}
	}
	return 0
}
