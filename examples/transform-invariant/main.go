// Transform-invariant retrieval: the paper's section 5 claim that rotated
// and reflected queries need only string reversal — no spatial-operator
// conversion. A database image is queried through every one of the eight
// dihedral transforms; the plain scorer misses, the invariant scorer
// retrieves it at full score.
package main

import (
	"context"
	"fmt"
	"log"

	"bestring"
)

func main() {
	gen := bestring.NewSceneGenerator(bestring.SceneConfig{
		Seed: 11, Objects: 7, Vocabulary: 18,
	})
	db := bestring.NewDB()
	var scenes []bestring.Image
	for i := 0; i < 40; i++ {
		scene := gen.Scene()
		scenes = append(scenes, scene)
		if err := db.Insert(fmt.Sprintf("img%02d", i), "", scene); err != nil {
			log.Fatal(err)
		}
	}
	target := scenes[13]

	// First: the string-level transforms agree with coordinate-space
	// rebuilds on every group element (experiment E6's core property).
	be := bestring.MustConvert(target)
	for _, tr := range bestring.AllTransforms {
		viaString := be.Apply(tr)
		viaImage := bestring.MustConvert(bestring.ApplyToImage(target, tr))
		if !viaString.Equal(viaImage) {
			log.Fatalf("transform %v: string path diverged from rebuild", tr)
		}
	}
	fmt.Println("all 8 string-level transforms equal coordinate-space rebuilds")

	fmt.Printf("\n%-15s %-22s %-22s\n", "query", "plain scorer", "invariant scorer")
	for _, tr := range bestring.AllTransforms[1:] {
		query := bestring.ApplyToImage(target, tr)

		plain, err := db.Search(context.Background(), query,
			bestring.SearchOptions{K: 1})
		if err != nil {
			log.Fatal(err)
		}
		inv, err := db.Search(context.Background(), query,
			bestring.SearchOptions{K: 1, Scorer: bestring.InvariantScorer(nil)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %-6s @ %.4f        %-6s @ %.4f\n",
			tr, plain[0].ID, plain[0].Score, inv[0].ID, inv[0].Score)
	}
	fmt.Println("\nthe invariant scorer finds img13 at 1.0000 for every transform;")
	fmt.Println("it costs only 8 string reversals per query — no reconversion.")
}
