// Floorplan: spatial-predicate retrieval over structured scenes — the
// paper introduction's motivating query ("find all images which icon A
// locates at the left side and icon B locates at the right") expressed in
// the query DSL, combined with R-tree region lookup and BE-string ranking.
package main

import (
	"context"
	"fmt"
	"log"

	"bestring"
)

// room places a labelled rectangle.
func room(label string, x0, y0, x1, y1 int) bestring.Object {
	return bestring.Object{Label: label, Box: bestring.NewRect(x0, y0, x1, y1)}
}

func main() {
	db := bestring.NewDB()

	// Three hand-built floor plans on a 100x60 canvas (y grows upward).
	plans := map[string]bestring.Image{
		// Classic layout: kitchen west, living east, bedrooms north.
		"plan-classic": bestring.NewImage(100, 60,
			room("kitchen", 0, 0, 30, 25),
			room("living", 35, 0, 75, 30),
			room("bath", 80, 0, 100, 20),
			room("bedroom1", 0, 30, 45, 60),
			room("bedroom2", 50, 35, 100, 60),
		),
		// Open plan: living spans the south, kitchen inside it as a nook.
		"plan-open": bestring.NewImage(100, 60,
			room("living", 0, 0, 100, 30),
			room("kitchen", 5, 5, 30, 25),
			room("bath", 0, 35, 20, 60),
			room("bedroom1", 25, 35, 100, 60),
		),
		// Mirrored classic: kitchen east, living west.
		"plan-mirror": bestring.NewImage(100, 60,
			room("kitchen", 70, 0, 100, 25),
			room("living", 25, 0, 65, 30),
			room("bath", 0, 0, 20, 20),
			room("bedroom1", 55, 30, 100, 60),
			room("bedroom2", 0, 35, 50, 60),
		),
	}
	for id, plan := range plans {
		if err := db.Insert(id, "floor plan", plan); err != nil {
			log.Fatal(err)
		}
	}

	// 1. The paper's motivating query as a spatial predicate.
	q, err := bestring.ParseQuery("kitchen left-of living; bedroom1 above kitchen")
	if err != nil {
		log.Fatal(err)
	}
	results, err := db.SearchDSL(context.Background(), q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", q)
	for _, r := range results {
		fmt.Printf("  %-14s score %.2f full=%v\n", r.ID, r.Score, r.Full)
	}

	// 2. A containment predicate distinguishes the open plan.
	q2, err := bestring.ParseQuery("kitchen inside living")
	if err != nil {
		log.Fatal(err)
	}
	results, err = db.SearchDSL(context.Background(), q2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: %s\n", q2)
	for _, r := range results {
		fmt.Printf("  %-14s score %.2f full=%v\n", r.ID, r.Score, r.Full)
	}

	// 3. R-tree region lookup: which plans put something in the
	// north-west quadrant?
	hits := db.SearchRegion(bestring.NewRect(0, 30, 30, 60), "")
	fmt.Println("\nicons intersecting the north-west quadrant:")
	for _, h := range hits {
		fmt.Printf("  %-14s %-10s %v\n", h.ImageID, h.Label, h.Box)
	}

	// 4. The mirrored plan is a reflection: the BE-string invariant
	// scorer retrieves it from the classic plan at full score.
	res, err := db.Search(context.Background(), plans["plan-classic"],
		bestring.SearchOptions{K: 3, Scorer: bestring.InvariantScorer(nil)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninvariant BE-string search with plan-classic as query:")
	for i, r := range res {
		fmt.Printf("  %d. %-14s score %.4f\n", i+1, r.ID, r.Score)
	}
}
