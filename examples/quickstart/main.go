// Quickstart: index the paper's Figure 1 image as a 2D BE-string, inspect
// the strings, and score a partial query against it — the 60-second tour
// of the library.
package main

import (
	"fmt"
	"log"

	"bestring"
)

func main() {
	// The three-object example image of the paper's Figure 1: icon A upper
	// left, icon B lower right, icon C between them, inside a 6x6 canvas.
	img := bestring.NewImage(6, 6,
		bestring.Object{Label: "A", Box: bestring.NewRect(1, 2, 3, 5)},
		bestring.Object{Label: "B", Box: bestring.NewRect(2, 1, 5, 3)},
		bestring.Object{Label: "C", Box: bestring.NewRect(3, 3, 4, 4)},
	)
	fmt.Println("image:")
	fmt.Print(bestring.ASCII(img, 36, 12))

	// Algorithm 1: Convert-2D-Be-String. Boundary symbols are A+ (begin) /
	// A- (end); E is the dummy object marking distinct projections.
	be, err := bestring.Convert(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n2D BE-string:")
	fmt.Println("  x:", be.X)
	fmt.Println("  y:", be.Y)
	fmt.Printf("  storage: %d units (n=3 objects: bounds 2n..4n+1 per axis)\n",
		be.StorageUnits())

	// Full accordance scores 1.0.
	self := bestring.Similarity(be, be)
	fmt.Printf("\nself similarity: %.3f\n", self.F)

	// A partial query — only icons A and C, B unknown — still scores,
	// which is the paper's headline improvement over type-i matching.
	partial, _ := img.WithoutObject("B")
	q := bestring.MustConvert(partial)
	s := bestring.Similarity(q, be)
	fmt.Printf("partial query (A, C only): sim(query)=%.3f sim(db)=%.3f sim(F)=%.3f\n",
		s.Query, s.DB, s.F)

	// Algorithm 3 reconstructs the matched common subsequence.
	m := bestring.Explain(q, be)
	fmt.Println("matched x:", m.X)
	fmt.Println("matched y:", m.Y)

	// Rotations and reflections are answered on the strings (section 5).
	fmt.Println("\nrot90 on strings:")
	rot := be.Rotate90CW()
	fmt.Println("  x:", rot.X)
	fmt.Println("  y:", rot.Y)
	inv := bestring.SimilarityInvariant(rot, be, nil)
	fmt.Printf("invariant similarity of rotated query: %.3f via %s\n", inv.F, inv.Transform)
}
