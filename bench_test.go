// Benchmarks regenerating the paper's evaluation, one per experiment of
// DESIGN.md (E1-E8), plus the search-engine scaling experiment (E9,
// BenchmarkSearch). cmd/benchtab prints the same data as tables; these
// benches give the raw ns/op under `go test -bench=. -benchmem`.
package bestring_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"bestring/internal/baseline/bstring"
	"bestring/internal/baseline/cstring"
	"bestring/internal/baseline/gstring"
	"bestring/internal/baseline/twodstring"
	"bestring/internal/baseline/typesim"
	"bestring/internal/bench"
	"bestring/internal/clique"
	"bestring/internal/core"
	"bestring/internal/imagedb"
	"bestring/internal/lcs"
	"bestring/internal/query"
	"bestring/internal/retrieval"
	"bestring/internal/rtree"
	"bestring/internal/similarity"
	"bestring/internal/wal"
	"bestring/internal/workload"
)

// sink defeats dead-code elimination across all benches.
var sink int

func scene(seed int64, n int) core.Image {
	gen := workload.NewGenerator(workload.Config{
		Seed: seed, Width: 6 * n, Height: 6 * n, Vocabulary: n, Objects: n,
	})
	return gen.Scene()
}

// BenchmarkE1Figure1 is experiment E1: converting the paper's Figure 1
// example image.
func BenchmarkE1Figure1(b *testing.B) {
	img := core.Figure1Image()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		be, err := core.Convert(img)
		if err != nil {
			b.Fatal(err)
		}
		sink += be.StorageUnits()
	}
}

// BenchmarkE2Storage is experiment E2: representation build cost and size
// for every member of the 2-D string family (storage units are reported as
// a custom metric).
func BenchmarkE2Storage(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		img := scene(bench.DefaultSeed, n)
		b.Run(fmt.Sprintf("model=be/n=%d", n), func(b *testing.B) {
			units := 0
			for i := 0; i < b.N; i++ {
				s, err := core.Convert(img)
				if err != nil {
					b.Fatal(err)
				}
				units = s.StorageUnits()
				sink += units
			}
			b.ReportMetric(float64(units), "units")
		})
		b.Run(fmt.Sprintf("model=bstring/n=%d", n), func(b *testing.B) {
			units := 0
			for i := 0; i < b.N; i++ {
				s, err := bstring.Build(img)
				if err != nil {
					b.Fatal(err)
				}
				units = s.StorageUnits()
				sink += units
			}
			b.ReportMetric(float64(units), "units")
		})
		b.Run(fmt.Sprintf("model=cstring/n=%d", n), func(b *testing.B) {
			units := 0
			for i := 0; i < b.N; i++ {
				s, err := cstring.Build(img)
				if err != nil {
					b.Fatal(err)
				}
				units = s.StorageUnits()
				sink += units
			}
			b.ReportMetric(float64(units), "units")
		})
		b.Run(fmt.Sprintf("model=gstring/n=%d", n), func(b *testing.B) {
			units := 0
			for i := 0; i < b.N; i++ {
				s, err := gstring.Build(img)
				if err != nil {
					b.Fatal(err)
				}
				units = s.StorageUnits()
				sink += units
			}
			b.ReportMetric(float64(units), "units")
		})
		b.Run(fmt.Sprintf("model=twodstring/n=%d", n), func(b *testing.B) {
			units := 0
			for i := 0; i < b.N; i++ {
				s, err := twodstring.Build(img)
				if err != nil {
					b.Fatal(err)
				}
				units = s.StorageUnits()
				sink += units
			}
			b.ReportMetric(float64(units), "units")
		})
	}
}

// BenchmarkE3Convert is experiment E3: Convert-2D-Be-String over an
// object-count sweep (O(n log n) including the sort).
func BenchmarkE3Convert(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256, 1024} {
		img := scene(bench.DefaultSeed, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				be, err := core.Convert(img)
				if err != nil {
					b.Fatal(err)
				}
				sink += len(be.X)
			}
		})
	}
}

// BenchmarkE4LCS is experiment E4: 2D-Be-LCS-Length over the (m, n) grid
// (O(mn) time, rolling-row O(min) space).
func BenchmarkE4LCS(b *testing.B) {
	for _, m := range []int{4, 16, 64} {
		for _, n := range []int{4, 16, 64, 256} {
			q := core.MustConvert(scene(bench.DefaultSeed+1, m))
			d := core.MustConvert(scene(bench.DefaultSeed+2, n))
			b.Run(fmt.Sprintf("m=%d/n=%d", m, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sink += lcs.Length(q.X, d.X) + lcs.Length(q.Y, d.Y)
				}
			})
		}
	}
}

// BenchmarkE4LCSFullTable measures the table-building variant used when
// the matched subsequence must be reconstructed (Algorithm 2 + 3).
func BenchmarkE4LCSFullTable(b *testing.B) {
	q := core.MustConvert(scene(bench.DefaultSeed+1, 32))
	d := core.MustConvert(scene(bench.DefaultSeed+2, 32))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := lcs.NewTable(q.X, d.X)
		sink += len(t.Reconstruct())
	}
}

// BenchmarkE5Retrieval is experiment E5: one full ranked search over the
// medium-difficulty workload, per scoring method.
func BenchmarkE5Retrieval(b *testing.B) {
	w, err := retrieval.BuildWorkload(retrieval.WorkloadConfig{
		Seed: bench.DefaultSeed, QueryKeep: 4, Jitter: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	methods := []struct {
		name   string
		scorer imagedb.Scorer
	}{
		{"be-lcs", imagedb.BEScorer()},
		{"be-lcs-invariant", imagedb.InvariantScorer(nil)},
		{"type-0", imagedb.TypeSimScorer(typesim.Type0)},
		{"type-2", imagedb.TypeSimScorer(typesim.Type2)},
	}
	for _, m := range methods {
		b.Run("method="+m.name, func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				round := w.Rounds[i%len(w.Rounds)]
				results, err := w.DB.Search(ctx, round.Query, imagedb.SearchOptions{Scorer: m.scorer})
				if err != nil {
					b.Fatal(err)
				}
				sink += len(results)
			}
		})
	}
}

// BenchmarkE6Transform is experiment E6: answering a transformed query on
// the strings versus reconverting the transformed image.
func BenchmarkE6Transform(b *testing.B) {
	img := scene(bench.DefaultSeed, 64)
	be := core.MustConvert(img)
	for _, tr := range core.AllTransforms {
		b.Run("strings/"+tr.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += be.Apply(tr).StorageUnits()
			}
		})
		b.Run("rebuild/"+tr.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += core.MustConvert(core.ApplyToImage(img, tr)).StorageUnits()
			}
		})
	}
}

// BenchmarkE7MatchCost is experiment E7: similarity-judgement cost,
// BE-LCS versus the pair-examination + clique baseline.
func BenchmarkE7MatchCost(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		gen := workload.NewGenerator(workload.Config{
			Seed: bench.DefaultSeed + 3, Width: 6 * n, Height: 6 * n, Vocabulary: n, Objects: n,
		})
		base := gen.Scene()
		query := gen.JitterQuery(base, 2)
		qbe := core.MustConvert(query)
		dbe := core.MustConvert(base)
		b.Run(fmt.Sprintf("lcs/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += similarity.Evaluate(qbe, dbe).LX
			}
		})
		b.Run(fmt.Sprintf("type0/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += typesim.Similarity(query, base, typesim.Type0).Score()
			}
		})
		b.Run(fmt.Sprintf("type2/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += typesim.Similarity(query, base, typesim.Type2).Score()
			}
		})
	}
}

// BenchmarkE7bCliqueBlowup times the maximum-clique solver on Moon-Moser
// graphs — the exponential worst case the type-i assessment inherits and
// the BE-LCS matching avoids.
func BenchmarkE7bCliqueBlowup(b *testing.B) {
	for _, k := range []int{5, 7, 9, 11} {
		n := 3 * k
		g := clique.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if u/3 != v/3 {
					if err := g.AddEdge(u, v); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.Run(fmt.Sprintf("moonmoser/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += g.MaxCliqueSize()
			}
		})
	}
}

// BenchmarkE8Incremental is experiment E8: incremental insert/delete on
// the indexed BE-string versus full reconversion.
func BenchmarkE8Incremental(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		gen := workload.NewGenerator(workload.Config{
			Seed: bench.DefaultSeed, Width: 8 * n, Height: 8 * n, Vocabulary: n + 1, Objects: n,
		})
		img := gen.Scene()
		extra := core.Object{Label: "extra", Box: core.NewRect(0, 0, 3, 3)}
		b.Run(fmt.Sprintf("insert+delete/n=%d", n), func(b *testing.B) {
			ix, err := core.NewIndexed(img)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ix.Insert(extra); err != nil {
					b.Fatal(err)
				}
				if err := ix.Delete(extra.Label); err != nil {
					b.Fatal(err)
				}
				sink++
			}
		})
		grown := img.WithObject(extra)
		b.Run(fmt.Sprintf("rebuild/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += core.MustConvert(grown).StorageUnits()
			}
		})
	}
}

// BenchmarkSearch is experiment E9: ranked retrieval over a corpus-size
// sweep, comparing the full-sort path (K=0: score all, sort all — what the
// engine did before per-worker bounded heaps) against the top-K heap path.
// Both return byte-identical top-10 rankings (TestSearchMatchesFullSort-
// Reference in internal/imagedb); the heap path allocates O(workers*K)
// instead of O(n) per query. 100k images is skipped under -short.
func BenchmarkSearch(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		if testing.Short() && n > 1000 {
			continue
		}
		gen := workload.NewGenerator(workload.Config{Seed: 23, Vocabulary: 32, Objects: 8})
		scenes := gen.Dataset(n)
		items := make([]imagedb.BulkItem, n)
		for i, s := range scenes {
			items[i] = imagedb.BulkItem{ID: fmt.Sprintf("img%06d", i), Image: s}
		}
		db := imagedb.New()
		ctx := context.Background()
		if err := db.BulkInsert(ctx, items, 0); err != nil {
			b.Fatal(err)
		}
		query := gen.SubsetQuery(scenes[n/2], 4)
		b.Run(fmt.Sprintf("images=%d/engine=fullsort", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := db.Search(ctx, query, imagedb.SearchOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) > 10 {
					results = results[:10]
				}
				sink += len(results)
			}
		})
		b.Run(fmt.Sprintf("images=%d/engine=topk", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := db.Search(ctx, query, imagedb.SearchOptions{K: 10})
				if err != nil {
					b.Fatal(err)
				}
				sink += len(results)
			}
		})
	}
}

// BenchmarkBulkInsert measures the parallel-conversion insert fast path
// against one-at-a-time Insert calls.
func BenchmarkBulkInsert(b *testing.B) {
	gen := workload.NewGenerator(workload.Config{Seed: 29, Vocabulary: 32, Objects: 8})
	scenes := gen.Dataset(2000)
	items := make([]imagedb.BulkItem, len(scenes))
	for i, s := range scenes {
		items[i] = imagedb.BulkItem{ID: fmt.Sprintf("img%06d", i), Image: s}
	}
	ctx := context.Background()
	b.Run("bulk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db := imagedb.New()
			if err := db.BulkInsert(ctx, items, 0); err != nil {
				b.Fatal(err)
			}
			sink += db.Len()
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db := imagedb.New()
			for _, it := range items {
				if err := db.Insert(it.ID, it.Name, it.Image); err != nil {
					b.Fatal(err)
				}
			}
			sink += db.Len()
		}
	})
}

// BenchmarkRTree measures the spatial-index substrate: insertion and
// window search over the icon MBRs of many stored scenes.
func BenchmarkRTree(b *testing.B) {
	gen := workload.NewGenerator(workload.Config{Seed: 13, Vocabulary: 64, Objects: 8})
	scenes := gen.Dataset(500)
	b.Run("insert-4000-icons", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := rtree.New(rtree.DefaultMaxEntries)
			for si, s := range scenes {
				for _, o := range s.Objects {
					tr.Insert(fmt.Sprintf("%d/%s", si, o.Label), o.Box)
				}
			}
			sink += tr.Len()
		}
	})
	tr := rtree.New(rtree.DefaultMaxEntries)
	for si, s := range scenes {
		for _, o := range s.Objects {
			tr.Insert(fmt.Sprintf("%d/%s", si, o.Label), o.Box)
		}
	}
	b.Run("window-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += len(tr.SearchIntersect(core.NewRect(20, 20, 45, 45)))
		}
	})
}

// BenchmarkLabelPrefilter measures the inverted-index prefilter ablation:
// full scan vs label-pruned scan on a collection with a wide vocabulary.
func BenchmarkLabelPrefilter(b *testing.B) {
	gen := workload.NewGenerator(workload.Config{Seed: 17, Vocabulary: 200, Objects: 6})
	db := imagedb.New()
	for i := 0; i < 400; i++ {
		if err := db.Insert(fmt.Sprintf("img%04d", i), "", gen.Scene()); err != nil {
			b.Fatal(err)
		}
	}
	query := gen.SubsetQuery(gen.Scene(), 3)
	ctx := context.Background()
	for _, pre := range []bool{false, true} {
		b.Run(fmt.Sprintf("prefilter=%v", pre), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := db.Search(ctx, query, imagedb.SearchOptions{
					K: 10, LabelPrefilter: pre,
				})
				if err != nil {
					b.Fatal(err)
				}
				sink += len(results)
			}
		})
	}
}

// BenchmarkSearchDSL measures spatial-predicate query evaluation.
func BenchmarkSearchDSL(b *testing.B) {
	gen := workload.NewGenerator(workload.Config{Seed: 19, Vocabulary: 12, Objects: 8})
	db := imagedb.New()
	for i := 0; i < 300; i++ {
		if err := db.Insert(fmt.Sprintf("img%04d", i), "", gen.Scene()); err != nil {
			b.Fatal(err)
		}
	}
	q, err := query.Parse("icon00 left-of icon01; icon02 above icon03")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		results, err := db.SearchDSL(ctx, q, 10)
		if err != nil {
			b.Fatal(err)
		}
		sink += len(results)
	}
}

// BenchmarkSearchParallelism measures the worker-pool scaling of database
// search (ablation: DESIGN.md section 4.6).
func BenchmarkSearchParallelism(b *testing.B) {
	gen := workload.NewGenerator(workload.Config{Seed: 5, Vocabulary: 32})
	db := imagedb.New()
	for i := 0; i < 200; i++ {
		if err := db.Insert(fmt.Sprintf("img%03d", i), "", gen.Scene()); err != nil {
			b.Fatal(err)
		}
	}
	query := gen.Scene()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				results, err := db.Search(ctx, query, imagedb.SearchOptions{Parallelism: workers})
				if err != nil {
					b.Fatal(err)
				}
				sink += len(results)
			}
		})
	}
}

// BenchmarkQueryPipeline is experiment E10: the composable query
// pipeline's staged narrowing (Where / region filters ahead of ranked
// scoring) against the unfiltered ranked path, at three selectivities.
// The corpus plants a "tagS left-of anchorS" pair in S% of images and a
// "probe" icon in 10% of them.
func BenchmarkQueryPipeline(b *testing.B) {
	const n = 10000
	sizes := n
	if testing.Short() {
		sizes = 1000
	}
	gen := workload.NewGenerator(workload.Config{Seed: 29, Vocabulary: 32, Objects: 8})
	scenes := gen.Dataset(sizes)
	items := make([]imagedb.BulkItem, sizes)
	for i, s := range scenes {
		for _, sel := range []int{1, 10, 100} {
			if i%(100/sel) == 0 {
				s = s.WithObject(core.Object{Label: fmt.Sprintf("tag%d", sel), Box: core.NewRect(0, 0, 1, 1)}).
					WithObject(core.Object{Label: fmt.Sprintf("anchor%d", sel), Box: core.NewRect(3, 0, 4, 1)})
			}
		}
		if i%10 == 0 {
			s = s.WithObject(core.Object{Label: "probe", Box: core.NewRect(60, 60, 62, 62)})
		}
		items[i] = imagedb.BulkItem{ID: fmt.Sprintf("img%06d", i), Image: s}
	}
	db := imagedb.New()
	ctx := context.Background()
	if err := db.BulkInsert(ctx, items, 0); err != nil {
		b.Fatal(err)
	}
	q := imagedb.NewQuery(gen.SubsetQuery(scenes[sizes/2], 4))

	run := func(name string, opts ...imagedb.QueryOption) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				page, err := db.Query(ctx, q, opts...)
				if err != nil {
					b.Fatal(err)
				}
				sink += len(page.Hits)
			}
		})
	}
	run("filter=none", imagedb.WithK(10))
	run("filter=where-1pct", imagedb.WithK(10), imagedb.Where("tag1 left-of anchor1"))
	run("filter=where-10pct", imagedb.WithK(10), imagedb.Where("tag10 left-of anchor10"))
	run("filter=where-100pct", imagedb.WithK(10), imagedb.Where("tag100 left-of anchor100"))
	run("filter=region-10pct", imagedb.WithK(10), imagedb.InRegionLabel(core.NewRect(59, 59, 63, 63), "probe"))
	run("filter=where+region", imagedb.WithK(10),
		imagedb.Where("tag10 left-of anchor10"),
		imagedb.InRegionLabel(core.NewRect(59, 59, 63, 63), "probe"))
}

// BenchmarkWALAppend is the microbench behind experiment E11: framing and
// appending one insert record to the write-ahead log under each fsync
// policy. fsync=always is the per-acknowledgement durability price;
// fsync=never isolates the encode+write cost. cmd/benchtab -exp e11
// reports the same trade at the store level (with batching).
func BenchmarkWALAppend(b *testing.B) {
	img := scene(bench.DefaultSeed, 8)
	for _, policy := range []wal.Policy{wal.SyncNever, wal.SyncAlways} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			log, err := wal.Open(b.TempDir(), 1, wal.Options{Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			rec := wal.Record{Op: wal.OpInsert, ID: "img000001", Image: &img}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lsn, _, err := log.Append(rec)
				if err != nil {
					b.Fatal(err)
				}
				sink += int(lsn)
			}
		})
	}
}

// BenchmarkSnapshotSearch is the microbench behind experiment E12:
// parallel ranked top-10 queries against the MVCC engine, with and
// without concurrent writer churn. Readers pin an immutable snapshot per
// query and acquire no locks, so the writers=4 numbers should track the
// writers=0 baseline; cmd/benchtab -exp e12 reports the same trade as
// throughput over a fixed window.
func BenchmarkSnapshotSearch(b *testing.B) {
	const n = 10000
	gen := workload.NewGenerator(workload.Config{Seed: 41, Vocabulary: 32, Objects: 8})
	scenes := gen.Dataset(n)
	items := make([]imagedb.BulkItem, n)
	for i, s := range scenes {
		items[i] = imagedb.BulkItem{ID: fmt.Sprintf("img%06d", i), Image: s}
	}
	db := imagedb.New()
	ctx := context.Background()
	if err := db.BulkInsert(ctx, items, 0); err != nil {
		b.Fatal(err)
	}
	query := gen.SubsetQuery(scenes[n/2], 4)
	churn := gen.Scene()
	for _, writers := range []int{0, 4} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						id := fmt.Sprintf("churn-%d-%d", w, i)
						if err := db.Insert(id, "", churn); err != nil {
							return
						}
						_ = db.Delete(id)
					}
				}(w)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					page, err := db.Query(ctx, imagedb.NewQuery(query), imagedb.WithK(10))
					if err != nil {
						b.Fatal(err)
					}
					if len(page.Hits) == 0 {
						b.Fatal("no hits")
					}
				}
			})
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkPrunedSearch is experiment E13: the filter-and-refine refine
// stage (signature upper bounds ahead of exact LCS scoring) on versus
// off, over a corpus sweep with the default scorer and K=10. Both paths
// return byte-identical rankings; the pruned fraction is reported as a
// custom metric.
func BenchmarkPrunedSearch(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		if testing.Short() && n > 1000 {
			continue
		}
		gen := workload.NewGenerator(workload.Config{Seed: 43, Vocabulary: 32, Objects: 8})
		scenes := gen.Dataset(n)
		items := make([]imagedb.BulkItem, n)
		for i, s := range scenes {
			items[i] = imagedb.BulkItem{ID: fmt.Sprintf("img%06d", i), Image: s}
		}
		db := imagedb.New()
		ctx := context.Background()
		if err := db.BulkInsert(ctx, items, 0); err != nil {
			b.Fatal(err)
		}
		q := imagedb.NewQuery(gen.SubsetQuery(scenes[n/2], 4))
		b.Run(fmt.Sprintf("images=%d/prune=off", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				page, err := db.Query(ctx, q, imagedb.WithK(10), imagedb.WithPruning(false))
				if err != nil {
					b.Fatal(err)
				}
				sink += len(page.Hits)
			}
		})
		b.Run(fmt.Sprintf("images=%d/prune=on", n), func(b *testing.B) {
			b.ReportAllocs()
			pruned := 0.0
			for i := 0; i < b.N; i++ {
				page, err := db.Query(ctx, q, imagedb.WithK(10))
				if err != nil {
					b.Fatal(err)
				}
				if s := page.Stages; s != nil && s.Bounded > 0 {
					pruned = float64(s.Pruned) / float64(s.Bounded)
				}
				sink += len(page.Hits)
			}
			b.ReportMetric(100*pruned, "pruned%")
		})
	}
}
