package bestring

import (
	"bestring/internal/imagedb"
)

// Durable-store types, re-exported. A Store wraps a DB with a segmented
// write-ahead log and checkpointed snapshots: every mutation is framed
// and fsynced (per policy) before it is applied, and OpenStore recovers
// the state a crash left behind — the latest valid snapshot plus a replay
// of the newer log tail. The full query/search API of DB is available on
// a Store unchanged; see DESIGN.md section 5.
type (
	// Store is the durable image database (WAL + snapshots + recovery).
	Store = imagedb.Store
	// StoreOptions tune OpenStore (fsync policy, segment size, shard
	// count, checkpoint threshold).
	StoreOptions = imagedb.StoreOptions
	// StoreStats describes a store's WAL and checkpoint state.
	StoreStats = imagedb.StoreStats
	// StoreInspection is InspectStore's read-only report on a store
	// directory.
	StoreInspection = imagedb.StoreInspection
	// FsyncPolicy selects when acknowledged mutations reach stable
	// storage.
	FsyncPolicy = imagedb.FsyncPolicy
	// CommitStats are a store's group-commit counters (groups committed,
	// mutations coalesced, rejected requests, largest group).
	CommitStats = imagedb.CommitStats
)

// Group-commit defaults: concurrent mutations coalesce into one WAL
// frame and share one fsync; the window bounds how long a mutation may
// wait for its group and the batch cap bounds group size. See DESIGN.md
// section 5 and EXPERIMENTS.md E11b.
const (
	DefaultCommitWindow = imagedb.DefaultCommitWindow
	DefaultCommitBatch  = imagedb.DefaultCommitBatch
)

// Fsync policies: every append (safest, the default), a background
// interval (bounded loss window), or never (OS-paced, fastest). See
// EXPERIMENTS.md E11 for the throughput trade.
const (
	FsyncAlways   = imagedb.FsyncAlways
	FsyncInterval = imagedb.FsyncInterval
	FsyncNever    = imagedb.FsyncNever
)

// ErrStoreClosed is returned by mutations on a closed Store.
var ErrStoreClosed = imagedb.ErrStoreClosed

// ErrReadOnlyReplica is returned by mutation methods on a follower
// store (StoreOptions.Replica): writes belong on the primary.
var ErrReadOnlyReplica = imagedb.ErrReadOnlyReplica

// OpenStore opens (creating if necessary) the durable store in dataDir
// and recovers its state. A torn final WAL record — a crash mid-append —
// is truncated and tolerated; interior corruption aborts with a
// descriptive error. Close the store to flush cleanly.
func OpenStore(dataDir string, opts StoreOptions) (*Store, error) {
	return imagedb.OpenStore(dataDir, opts)
}

// ParseFsyncPolicy reads a policy name: "always", "interval" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	return imagedb.ParseFsyncPolicy(s)
}

// InspectStore examines a store directory without opening it for
// writing: snapshots, WAL segments, record counts and tail condition.
func InspectStore(dataDir string) (*StoreInspection, error) {
	return imagedb.InspectStore(dataDir)
}
