module bestring

go 1.24
