package bestring

import (
	"bestring/internal/imagedb"
)

// Composable query types, re-exported. A Query is built once with
// NewQuery/NewMatchQuery plus functional options and executed with
// DB.Query (one page) or DB.QueryIter (a stream):
//
//	page, err := db.Query(ctx, bestring.NewQuery(img),
//	        bestring.WithK(10),
//	        bestring.WithScorer("invariant"),
//	        bestring.Where("A left-of B"),
//	        bestring.InRegion(bestring.NewRect(0, 0, 40, 40)),
//	        bestring.WithMinScore(0.4))
//
// Inside the engine the query compiles into a staged candidate pipeline:
// inverted label index, then R-tree region probe, then spatial-predicate
// evaluation, and only the survivors reach ranked top-K scoring — so DSL
// and region retrieval are filters on ranked search, not separate code
// paths. The deprecated Search/SearchDSL/SearchRegion entry points are
// thin wrappers over the same pipeline.
type (
	// Query is a composable retrieval request (ranked similarity +
	// spatial-predicate filter + region filter + pagination).
	Query = imagedb.Query
	// QueryOption configures a Query.
	QueryOption = imagedb.QueryOption
	// QueryPage is one page of query results.
	QueryPage = imagedb.Page
	// QueryHit is one result of a composed query.
	QueryHit = imagedb.Hit
	// QueryStages are the per-stage candidate counts of one executed
	// query (narrowed -> bounded -> evaluated/pruned), reported on every
	// QueryPage for pruning-efficacy observability.
	QueryStages = imagedb.StageCounts
	// ScorerBound is a cheap upper bound on a scorer's exact score,
	// computed from two symbol signatures (see RegisterBoundedScorer for
	// the soundness contract).
	ScorerBound = imagedb.Bound
	// SearchStats are a DB's cumulative filter-and-refine counters.
	SearchStats = imagedb.SearchStats
	// QueryPlan records the stage order the cost-based planner chose for
	// one executed query, its selectivity estimates and the query's
	// scorer-cache hit/miss counts; reported on every QueryPage.
	QueryPlan = imagedb.QueryPlan
	// ScorerCacheStats is a point-in-time view of a DB's scorer cache.
	ScorerCacheStats = imagedb.ScorerCacheStats
)

// DefaultScorerName is the registry name used when a query names no
// scorer.
const DefaultScorerName = imagedb.DefaultScorerName

// NewQuery returns a ranked-retrieval query for the image, to be refined
// with options and executed by DB.Query or DB.QueryIter.
func NewQuery(img Image) *Query { return imagedb.NewQuery(img) }

// NewMatchQuery returns a query with no ranked component: results order
// by spatial-predicate satisfaction (with Where) or by id (region-only).
func NewMatchQuery() *Query { return imagedb.NewMatchQuery() }

// WithK limits the page to the best k results (0 means all).
func WithK(k int) QueryOption { return imagedb.WithK(k) }

// WithOffset skips the first n results of the ranking. For pagination
// that stays stable under concurrent inserts, prefer WithCursor.
func WithOffset(n int) QueryOption { return imagedb.WithOffset(n) }

// WithCursor resumes a paginated query after the position encoded in a
// previous QueryPage.NextCursor.
func WithCursor(c string) QueryOption { return imagedb.WithCursor(c) }

// WithScorer selects a registered scorer by name ("" means the default
// BE-LCS scorer); see RegisterScorer.
func WithScorer(name string) QueryOption { return imagedb.WithScorer(name) }

// WithScorerFunc ranks with an explicit scorer, bypassing the registry.
func WithScorerFunc(s Scorer) QueryOption { return imagedb.WithScorerFunc(s) }

// Where filters results with a spatial-predicate expression
// ("A left-of B; B above C"). With a ranked component the filter keeps
// images satisfying every clause (tune with WithWhereMin); without one
// the satisfied fraction becomes the ranking score.
func Where(dsl string) QueryOption { return imagedb.Where(dsl) }

// WhereQuery is Where for an already-parsed SpatialQuery.
func WhereQuery(q SpatialQuery) QueryOption { return imagedb.WhereQuery(q) }

// WithWhereMin sets the satisfied fraction a result's Where evaluation
// must reach, in (0, 1].
func WithWhereMin(f float64) QueryOption { return imagedb.WithWhereMin(f) }

// InRegion keeps images with at least one icon intersecting the region.
func InRegion(r Rect) QueryOption { return imagedb.InRegion(r) }

// InRegionLabel is InRegion restricted to icons with the given label.
func InRegionLabel(r Rect, label string) QueryOption {
	return imagedb.InRegionLabel(r, label)
}

// WithMinScore drops results scoring strictly below the threshold.
func WithMinScore(f float64) QueryOption { return imagedb.WithMinScore(f) }

// WithParallelism bounds the scoring workers (0 means GOMAXPROCS).
func WithParallelism(n int) QueryOption { return imagedb.WithParallelism(n) }

// WithLabelPrefilter restricts scoring to images sharing at least one
// icon label with the query image.
func WithLabelPrefilter(on bool) QueryOption {
	return imagedb.WithLabelPrefilter(on)
}

// WithPruning toggles the filter-and-refine refine stage (default on).
// Pruning never changes results; disabling it is only useful for
// measuring what the signature upper bounds save.
func WithPruning(on bool) QueryOption { return imagedb.WithPruning(on) }

// WithPlanner toggles the cost-based stage planner (default on). Plans
// change only how the candidate set is assembled, never what it
// contains — rankings are byte-identical either way.
func WithPlanner(on bool) QueryOption { return imagedb.WithPlanner(on) }

// WithScorerCache toggles this query's use of the engine's scorer cache
// (default on). A cached score is always the exact score, so rankings
// are byte-identical with the cache on or off.
func WithScorerCache(on bool) QueryOption { return imagedb.WithScorerCache(on) }

// ScorerCacheable reports whether the named scorer's evaluations are
// eligible for the scorer cache ("" resolves to the default).
func ScorerCacheable(name string) bool { return imagedb.ScorerCacheable(name) }

// RegisterScorer adds a named scorer to the registry shared by the
// library, the CLI and the REST server, with no upper bound (queries
// ranking with it evaluate every candidate exactly). Built-in names:
// be, invariant, type0, type1, type2, symbols.
func RegisterScorer(name string, s Scorer) error {
	return imagedb.RegisterScorer(name, s)
}

// RegisterBoundedScorer adds a named scorer together with its signature
// upper bound, enabling filter-and-refine pruning for queries ranking
// with it. The bound must dominate the scorer's exact score (which must
// be non-negative) for every query/entry pair — see the Bound contract
// in internal/imagedb; a violating bound silently corrupts rankings.
func RegisterBoundedScorer(name string, s Scorer, b ScorerBound) error {
	return imagedb.RegisterBoundedScorer(name, s, b)
}

// LookupScorer resolves a registered scorer by name ("" resolves to the
// default).
func LookupScorer(name string) (Scorer, bool) {
	return imagedb.LookupScorer(name)
}

// LookupBound resolves the upper bound a registered scorer declared
// ("" resolves to the default; ok is false for exact-only scorers).
func LookupBound(name string) (ScorerBound, bool) {
	return imagedb.LookupBound(name)
}

// ScorerNames lists the registered scorer names, sorted.
func ScorerNames() []string { return imagedb.ScorerNames() }
