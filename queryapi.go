package bestring

import (
	"bestring/internal/imagedb"
)

// Composable query types, re-exported. A Query is built once with
// NewQuery/NewMatchQuery plus functional options and executed with
// DB.Query (one page) or DB.QueryIter (a stream):
//
//	page, err := db.Query(ctx, bestring.NewQuery(img),
//	        bestring.WithK(10),
//	        bestring.WithScorer("invariant"),
//	        bestring.Where("A left-of B"),
//	        bestring.InRegion(bestring.NewRect(0, 0, 40, 40)),
//	        bestring.WithMinScore(0.4))
//
// Inside the engine the query compiles into a staged candidate pipeline:
// inverted label index, then R-tree region probe, then spatial-predicate
// evaluation, and only the survivors reach ranked top-K scoring — so DSL
// and region retrieval are filters on ranked search, not separate code
// paths. The deprecated Search/SearchDSL/SearchRegion entry points are
// thin wrappers over the same pipeline.
type (
	// Query is a composable retrieval request (ranked similarity +
	// spatial-predicate filter + region filter + pagination).
	Query = imagedb.Query
	// QueryOption configures a Query.
	QueryOption = imagedb.QueryOption
	// QueryPage is one page of query results.
	QueryPage = imagedb.Page
	// QueryHit is one result of a composed query.
	QueryHit = imagedb.Hit
)

// DefaultScorerName is the registry name used when a query names no
// scorer.
const DefaultScorerName = imagedb.DefaultScorerName

// NewQuery returns a ranked-retrieval query for the image, to be refined
// with options and executed by DB.Query or DB.QueryIter.
func NewQuery(img Image) *Query { return imagedb.NewQuery(img) }

// NewMatchQuery returns a query with no ranked component: results order
// by spatial-predicate satisfaction (with Where) or by id (region-only).
func NewMatchQuery() *Query { return imagedb.NewMatchQuery() }

// WithK limits the page to the best k results (0 means all).
func WithK(k int) QueryOption { return imagedb.WithK(k) }

// WithOffset skips the first n results of the ranking. For pagination
// that stays stable under concurrent inserts, prefer WithCursor.
func WithOffset(n int) QueryOption { return imagedb.WithOffset(n) }

// WithCursor resumes a paginated query after the position encoded in a
// previous QueryPage.NextCursor.
func WithCursor(c string) QueryOption { return imagedb.WithCursor(c) }

// WithScorer selects a registered scorer by name ("" means the default
// BE-LCS scorer); see RegisterScorer.
func WithScorer(name string) QueryOption { return imagedb.WithScorer(name) }

// WithScorerFunc ranks with an explicit scorer, bypassing the registry.
func WithScorerFunc(s Scorer) QueryOption { return imagedb.WithScorerFunc(s) }

// Where filters results with a spatial-predicate expression
// ("A left-of B; B above C"). With a ranked component the filter keeps
// images satisfying every clause (tune with WithWhereMin); without one
// the satisfied fraction becomes the ranking score.
func Where(dsl string) QueryOption { return imagedb.Where(dsl) }

// WhereQuery is Where for an already-parsed SpatialQuery.
func WhereQuery(q SpatialQuery) QueryOption { return imagedb.WhereQuery(q) }

// WithWhereMin sets the satisfied fraction a result's Where evaluation
// must reach, in (0, 1].
func WithWhereMin(f float64) QueryOption { return imagedb.WithWhereMin(f) }

// InRegion keeps images with at least one icon intersecting the region.
func InRegion(r Rect) QueryOption { return imagedb.InRegion(r) }

// InRegionLabel is InRegion restricted to icons with the given label.
func InRegionLabel(r Rect, label string) QueryOption {
	return imagedb.InRegionLabel(r, label)
}

// WithMinScore drops results scoring strictly below the threshold.
func WithMinScore(f float64) QueryOption { return imagedb.WithMinScore(f) }

// WithParallelism bounds the scoring workers (0 means GOMAXPROCS).
func WithParallelism(n int) QueryOption { return imagedb.WithParallelism(n) }

// WithLabelPrefilter restricts scoring to images sharing at least one
// icon label with the query image.
func WithLabelPrefilter(on bool) QueryOption {
	return imagedb.WithLabelPrefilter(on)
}

// RegisterScorer adds a named scorer to the registry shared by the
// library, the CLI and the REST server. Built-in names: be, invariant,
// type0, type1, type2, symbols.
func RegisterScorer(name string, s Scorer) error {
	return imagedb.RegisterScorer(name, s)
}

// LookupScorer resolves a registered scorer by name ("" resolves to the
// default).
func LookupScorer(name string) (Scorer, bool) {
	return imagedb.LookupScorer(name)
}

// ScorerNames lists the registered scorer names, sorted.
func ScorerNames() []string { return imagedb.ScorerNames() }
