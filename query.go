package bestring

import (
	"bestring/internal/imagedb"
	"bestring/internal/query"
)

// Spatial-predicate query types, re-exported.
type (
	// SpatialQuery is a parsed conjunction of spatial predicates
	// ("A left-of B; B above C") evaluated against symbolic images.
	SpatialQuery = query.Query
	// SpatialConstraint is one clause of a SpatialQuery.
	SpatialConstraint = query.Constraint
	// RegionHit is one icon found by DB.SearchRegion.
	RegionHit = imagedb.RegionHit
	// QueryResult is one image ranked by DB.SearchDSL.
	QueryResult = imagedb.QueryResult
	// BulkItem is one image in DB.BulkInsert.
	BulkItem = imagedb.BulkItem
)

// ParseQuery parses the spatial-predicate surface syntax: clauses
// separated by ';' or newlines, each "label op label" with op one of
// left-of, right-of, above, below, overlaps, inside, contains, disjoint.
func ParseQuery(s string) (SpatialQuery, error) { return query.Parse(s) }
